"""``python -m repro ingest`` — convert, describe and validate external traces.

Subcommands (wired into the main parser by :mod:`repro.eval.cli`)::

    repro ingest convert trace.trc out.npz        # external -> cached Trace
    repro ingest convert trace.trc out.csv --to pincsv   # transcode
    repro ingest describe trace.trc               # parse + provenance stats
    repro ingest describe out.npz                 # header of a converted trace
    repro ingest validate [registry.toml]         # check the benchmark registry
    repro ingest formats                          # list format adapters

Exit codes follow the repo convention: 0 clean, 1 validation findings,
2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from .errors import IngestError
from .formats import FORMATS, get_format, sniff_format
from .normalize import IngestStats, records_to_trace

__all__ = ["add_ingest_arguments", "run_ingest_command"]


def _read_source(path: Path, format_name: Optional[str]):
    """Read + parse one external trace file; returns (format, records, data)."""
    data = path.read_bytes()
    name = format_name or sniff_format(data, source=path.name)
    return name, get_format(name).read(data, path.name), data


def _cmd_convert(args: argparse.Namespace) -> int:
    src = Path(args.source)
    try:
        format_name, records, data = _read_source(src, args.format)
    except (IngestError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 2
    dst = Path(args.output)
    if args.to:
        # Transcode between external formats (the writers exist for
        # round-trip testing; transcoding falls out for free).
        try:
            rendered = get_format(args.to).write(records)
        except IngestError as error:
            print(str(error), file=sys.stderr)
            return 2
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_bytes(rendered)
        print(f"wrote {len(records)} records to {dst} [{args.to}]")
        return 0
    trace = records_to_trace(
        records,
        args.name or src.stem,
        format_name=format_name,
        source=str(src),
        source_bytes=data,
        max_records=args.max_records,
    )
    trace.save(dst)
    print(IngestStats(**trace.meta["ingest"]).describe())
    print(f"wrote {dst}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    src = Path(args.source)
    if src.suffix == ".npz":
        # A converted trace: show the persisted header without touching
        # the event columns.
        from ..trace.trace import Trace

        try:
            header = Trace.load_header(src)
        except (OSError, KeyError, ValueError) as error:
            print(f"{src}: not a trace archive ({error})", file=sys.stderr)
            return 2
        print(json.dumps(header, indent=2, sort_keys=True))
        return 0
    try:
        format_name, records, data = _read_source(src, args.format)
    except (IngestError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 2
    trace = records_to_trace(
        records, src.stem, format_name=format_name,
        source=str(src), source_bytes=data,
    )
    print(IngestStats(**trace.meta["ingest"]).describe())
    print(trace.summary())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from ..workloads import registry as R

    path = args.manifest or R.default_manifest_path()
    if path is None:
        print("no registry manifest configured (pass a path, or set"
              " REPRO_REGISTRY / --registry)", file=sys.stderr)
        return 2
    try:
        registry = R.load_registry(path)
    except (IngestError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 2
    problems = R.validate(registry)
    if problems:
        for problem in problems:
            print(problem)
        return 1
    print(
        f"{registry.path}: {len(registry.entries)} trace(s),"
        f" {len(registry.sets)} set(s) validate"
    )
    return 0


def _cmd_formats(_args: argparse.Namespace) -> int:
    for fmt in FORMATS.values():
        print(f"  {fmt.name:<10} {fmt.description}")
    return 0


def add_ingest_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ingest sub-subcommands to the ``ingest`` parser."""
    sub = parser.add_subparsers(dest="ingest_mode", required=True)

    convert = sub.add_parser(
        "convert",
        help="convert an external trace to a cached .npz Trace"
             " (or transcode with --to)",
    )
    convert.add_argument("source", metavar="SRC",
                         help="external trace file")
    convert.add_argument("output", metavar="DST",
                         help=".npz trace archive (or external file with"
                              " --to)")
    convert.add_argument("--format", choices=sorted(FORMATS), default=None,
                         help="pin the input format (default: sniff)")
    convert.add_argument("--to", choices=sorted(FORMATS), default=None,
                         metavar="FORMAT",
                         help="transcode to another external format instead"
                              " of building a trace")
    convert.add_argument("--name", default=None,
                         help="trace name recorded in the archive"
                              " (default: source stem)")
    convert.add_argument("--max-records", type=int, default=None, metavar="N",
                         help="keep only the first N records")
    convert.set_defaults(ingest_func=_cmd_convert)

    describe = sub.add_parser(
        "describe",
        help="parse a trace file and print provenance statistics",
    )
    describe.add_argument("source", metavar="FILE",
                          help="external trace file or converted .npz")
    describe.add_argument("--format", choices=sorted(FORMATS), default=None,
                          help="pin the input format (default: sniff)")
    describe.set_defaults(ingest_func=_cmd_describe)

    validate = sub.add_parser(
        "validate",
        help="check a benchmark-set registry manifest and its trace files",
    )
    validate.add_argument("manifest", nargs="?", default=None,
                          metavar="MANIFEST",
                          help="registry manifest (default: REPRO_REGISTRY,"
                               " else benchmarks/traces/registry.json)")
    validate.set_defaults(ingest_func=_cmd_validate)

    formats = sub.add_parser("formats", help="list format adapters")
    formats.set_defaults(ingest_func=_cmd_formats)


def run_ingest_command(args: argparse.Namespace) -> int:
    handler = args.ingest_func
    return handler(args)
