"""External trace ingestion: format adapters, sniffing, normalization.

The repo's figures all run on synthetic workload traces; this package is
the door for *real* traces.  Two adapters cover the common interchange
shapes — DRAMSim2-style ``<addr> <command> <cycle>`` text and gem5/Pin
style ``pc,addr,size,is_load`` CSV — each with a matching writer so
round-trips are testable byte for byte.  :mod:`repro.ingest.normalize`
turns parsed records into the repo's :class:`~repro.trace.trace.Trace`
(synthesizing PCs for PC-less formats) and records full provenance; the
benchmark-set registry (:mod:`repro.workloads.registry`) builds on this
to make external traces first-class citizens of every driver.
"""

from .errors import FormatError, IngestError, RegistryError
from .formats import (
    FORMAT_NAMES,
    FORMATS,
    TraceFormat,
    get_format,
    read_path,
    sniff_format,
    write_path,
)
from .normalize import IngestStats, records_to_trace, synthesize_pc
from .records import IngestRecord

__all__ = [
    "FORMAT_NAMES",
    "FORMATS",
    "FormatError",
    "IngestError",
    "IngestRecord",
    "IngestStats",
    "RegistryError",
    "TraceFormat",
    "get_format",
    "read_path",
    "records_to_trace",
    "sniff_format",
    "synthesize_pc",
    "write_path",
]
