"""The normalized external-trace record: what every adapter parses into.

Both ingestion formats — however different their syntax — reduce to a
flat sequence of memory-reference records.  :class:`IngestRecord` is that
common currency: the format adapters produce lists of them, the writers
consume lists of them, and :mod:`repro.ingest.normalize` turns a list
into the repo's :class:`~repro.trace.trace.Trace` abstraction.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

__all__ = [
    "KIND_FETCH",
    "KIND_LOAD",
    "KIND_STORE",
    "IngestRecord",
    "MAX_ADDRESS",
]

#: Record kinds.  Strings, not the trace-event integer codes: these name
#: what the *source format* said, before normalization policy applies.
KIND_LOAD = "load"
KIND_STORE = "store"
KIND_FETCH = "fetch"

#: Addresses are 64-bit: the widest value any adapter accepts or writes.
MAX_ADDRESS = (1 << 64) - 1


class IngestRecord(NamedTuple):
    """One external memory reference, format-independent.

    Attributes
    ----------
    kind:
        ``"load"``, ``"store"`` or ``"fetch"`` (instruction fetch;
        DRAMSim2's ``P_FETCH`` command — dropped during normalization).
    addr:
        Effective address, ``0 <= addr <= MAX_ADDRESS``.
    pc:
        Program counter of the referencing instruction, or ``None`` for
        PC-less formats (DRAMSim2); normalization synthesizes one.
    size:
        Access size in bytes (CSV column; DRAMSim2 records default to 4).
    cycle:
        Source timestamp when the format carries one, else ``None``.
    """

    kind: str
    addr: int
    pc: Optional[int] = None
    size: int = 4
    cycle: Optional[int] = None

    @property
    def is_load(self) -> bool:
        return self.kind == KIND_LOAD
