"""Format registry and content sniffing for external trace files.

Each adapter registers a :class:`TraceFormat` — a ``read`` from bytes to
normalized :class:`~repro.ingest.records.IngestRecord` lists and a
``write`` back to bytes (so round-trips are testable).  Sniffing is
content-based, never extension-based: the first data line (after
comments and blanks) either contains commas (the CSV family) or splits
into the three ``<addr> <command> <cycle>`` fields (the DRAMSim2
family).  Content that matches neither fails loudly with a pinned
message instead of guessing — a mis-sniffed format would "succeed" into
a garbage trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional

from . import dramsim, pincsv
from .errors import FormatError
from .records import IngestRecord

__all__ = [
    "FORMAT_NAMES",
    "FORMATS",
    "TraceFormat",
    "get_format",
    "read_path",
    "sniff_format",
    "write_path",
]


class TraceFormat(NamedTuple):
    """One registered external-trace format adapter."""

    name: str
    description: str
    read: Callable[[bytes, str], List[IngestRecord]]
    write: Callable[[List[IngestRecord]], bytes]


#: name -> adapter, in sniffing priority order.
FORMATS: Dict[str, TraceFormat] = {
    dramsim.FORMAT_NAME: TraceFormat(
        name=dramsim.FORMAT_NAME,
        description="DRAMSim2-style text: <hex addr> <command> <cycle>",
        read=dramsim.read,
        write=dramsim.write,
    ),
    pincsv.FORMAT_NAME: TraceFormat(
        name=pincsv.FORMAT_NAME,
        description="gem5/Pin-style CSV: pc,addr,size,is_load",
        read=pincsv.read,
        write=pincsv.write,
    ),
}

FORMAT_NAMES = tuple(FORMATS)


def get_format(name: str) -> TraceFormat:
    """Look up an adapter by name (typed error on unknown names)."""
    try:
        return FORMATS[name]
    except KeyError:
        raise FormatError(
            f"unknown trace format {name!r}"
            f" (expected one of: {', '.join(FORMAT_NAMES)})"
        ) from None


def sniff_format(data: bytes, source: str = "<trace>") -> str:
    """Decide which adapter should parse ``data`` (content-based).

    Only the first data line is consulted; the adapter itself then
    enforces the full grammar.  BOM and decode problems surface here with
    the same messages the adapters pin, so ``sniff + read`` never reports
    a different error than ``read`` alone would.
    """
    if data.startswith(b"\xef\xbb\xbf"):
        raise FormatError("UTF-8 BOM not allowed", source, line=1)
    try:
        text = data.decode("utf-8", errors="replace")
    except Exception:  # pragma: no cover - replace never raises
        text = ""
    for raw in text.split("\n"):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "," in line:
            return pincsv.FORMAT_NAME
        if len(line.split()) == 3:
            return dramsim.FORMAT_NAME
        raise FormatError(
            f"cannot determine trace format from {line[:40]!r}: expected"
            f" '<addr> <command> <cycle>' text or a"
            f" 'pc,addr,size,is_load' CSV",
            source,
        )
    raise FormatError("no records found", source)


def read_path(
    path: "Path | str", format_name: Optional[str] = None
) -> tuple:
    """Read one trace file; returns ``(format_name, records)``.

    ``format_name`` pins the adapter; ``None`` sniffs the content.
    """
    path = Path(path)
    data = path.read_bytes()
    name = format_name or sniff_format(data, source=path.name)
    adapter = get_format(name)
    return name, adapter.read(data, path.name)


def write_path(
    path: "Path | str", format_name: str, records: List[IngestRecord]
) -> Path:
    """Write records to ``path`` in the named format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(get_format(format_name).write(records))
    return path
