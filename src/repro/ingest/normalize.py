"""Normalize external records into the repo's ``Trace`` abstraction.

External formats know nothing about the mini-ISA, so normalization is a
policy layer, deterministic end to end:

* **PC synthesis.**  DRAMSim2 records carry no program counter (and a
  CSV row may carry PC 0, the null page — equally meaningless), yet
  every predictor in the repo indexes its tables by the static load's
  IP.  Records without a usable PC get a synthetic one derived from the
  *address region*: each :data:`SYNTH_REGION_BYTES`-sized region maps to
  one of :data:`SYNTH_SLOTS` synthetic static loads at
  ``SYNTH_PC_BASE``.  A sequential DRAM stream thus looks like one
  static load striding through memory — exactly what a hardware
  prefetcher in the memory controller would observe — while scattered
  pointer chases spread over many synthetic PCs.
* **Load filtering.**  Loads become ``KIND_LOAD`` trace events (the
  predictor-visible stream), stores become ``KIND_STORE`` events (kept
  in the trace, invisible to address predictors, same as the synthetic
  workloads), and instruction fetches are dropped.  Every record that
  does not surface as a predictor-visible load is tallied in
  :attr:`IngestStats.dropped` by reason, so provenance can state *why*
  the record count shrank.

The resulting :class:`~repro.trace.trace.Trace` feeds the columnar
``PredictorStream`` (v3 ``ps_*`` arrays) through the normal
``predictor_columns()`` path — nothing downstream knows the trace was
not synthesized in-process.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..trace.event import KIND_LOAD, KIND_STORE
from ..trace.trace import Trace
from .records import IngestRecord

__all__ = [
    "SYNTH_PC_BASE",
    "SYNTH_REGION_BYTES",
    "SYNTH_SLOTS",
    "IngestStats",
    "records_to_trace",
    "sha256_bytes",
    "ADDRESS_MASK",
    "canonical_address",
    "synthesize_pc",
]

#: Base address of the synthetic static-load "code segment".  High and
#: round so synthesized PCs never collide with the mini-ISA's real code
#: addresses or with CSV-supplied PCs from ordinary text segments.
SYNTH_PC_BASE = 0x7F000000

#: Region granularity for PC synthesis: one synthetic static load per
#: 4 KiB page of the address space (modulo the slot count).
SYNTH_REGION_BYTES = 4096

#: Number of distinct synthetic PCs (power of two).  Bounds the static
#: footprint a PC-less trace can occupy in the predictors' tables.
SYNTH_SLOTS = 1024

#: Drop-reason keys (stable vocabulary; provenance dicts use these).
DROP_FETCH = "fetch"
DROP_TRUNCATED = "truncated"


def synthesize_pc(addr: int) -> int:
    """Deterministic synthetic PC for a PC-less record (see module docs)."""
    region = addr // SYNTH_REGION_BYTES
    return SYNTH_PC_BASE + (region % SYNTH_SLOTS) * 4


#: The predictor-visible address space: non-negative int64.  The format
#: adapters accept the full unsigned 64-bit range, but the trace's
#: ``ps_*`` columns are int64 and the kernel backend's hashing assumes
#: non-negative values (an arithmetic shift on a negative int64 never
#: terminates its fold loop), so normalization masks the top bit away.
ADDRESS_MASK = (1 << 63) - 1


def canonical_address(value: int) -> int:
    """Canonicalize an unsigned 64-bit value into the int64-safe range.

    A value at or above 2**63 would overflow the kernel backend's int64
    arrays while the pure-Python loops happily carried the big int — a
    silent backend-parity hazard.  Masking to 63 bits here, once, keeps
    both backends bit-identical.  Real traces are unaffected: no
    physical DRAM address or canonical x86-64 virtual address occupies
    bit 63.
    """
    return value & ADDRESS_MASK


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 digest of a source file's raw bytes."""
    return hashlib.sha256(data).hexdigest()


@dataclass
class IngestStats:
    """Provenance of one ingestion: what came in, what survived, why not.

    Serialized (via :meth:`as_dict`) into the converted trace's metadata
    and from there into run manifests, so a figure computed on an
    ingested trace can always be traced back to the exact source bytes.
    """

    format: str = ""
    source: str = ""
    sha256: str = ""
    bytes: int = 0
    records: int = 0
    events_kept: int = 0
    loads_kept: int = 0
    dropped: Dict[str, int] = field(default_factory=dict)
    synthesized_pcs: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "format": self.format,
            "source": self.source,
            "sha256": self.sha256,
            "bytes": self.bytes,
            "records": self.records,
            "events_kept": self.events_kept,
            "loads_kept": self.loads_kept,
            "dropped": dict(sorted(self.dropped.items())),
            "synthesized_pcs": self.synthesized_pcs,
        }

    def describe(self) -> str:
        dropped = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(self.dropped.items())
        ) or "none"
        return (
            f"{self.source or '<memory>'} [{self.format}]:"
            f" {self.records} records -> {self.events_kept} events"
            f" ({self.loads_kept} loads), dropped: {dropped},"
            f" synthesized PCs: {self.synthesized_pcs}"
        )


def records_to_trace(
    records: List[IngestRecord],
    name: str,
    *,
    format_name: str = "",
    source: str = "",
    source_bytes: Optional[bytes] = None,
    suite: str = "EXT",
    max_records: Optional[int] = None,
) -> Trace:
    """Build a :class:`Trace` from normalized records.

    ``max_records`` keeps a deterministic prefix (the external analogue
    of the synthetic suites' instruction budget); truncation is recorded
    as a drop reason.  The returned trace carries the full
    :class:`IngestStats` in ``trace.meta["ingest"]``.
    """
    stats = IngestStats(
        format=format_name,
        source=source,
        sha256=sha256_bytes(source_bytes) if source_bytes is not None else "",
        bytes=len(source_bytes) if source_bytes is not None else 0,
        records=len(records),
    )
    kept = records
    if max_records is not None and len(records) > max_records:
        kept = records[:max_records]
        stats.dropped[DROP_TRUNCATED] = len(records) - max_records
    trace = Trace(name=name)
    for record in kept:
        if record.kind == "fetch":
            stats.dropped[DROP_FETCH] = stats.dropped.get(DROP_FETCH, 0) + 1
            continue
        pc = record.pc
        if not pc:  # None or the meaningless null page
            pc = synthesize_pc(record.addr)
            stats.synthesized_pcs += 1
        kind = KIND_LOAD if record.kind == "load" else KIND_STORE
        trace.append(kind=kind, ip=canonical_address(pc),
                     addr=canonical_address(record.addr), offset=0)
        stats.events_kept += 1
        if kind == KIND_LOAD:
            stats.loads_kept += 1
    trace.meta = {
        "suite": suite,
        "workload": "external",
        "ingest": stats.as_dict(),
    }
    return trace
