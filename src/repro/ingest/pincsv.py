"""gem5/Pin-style CSV trace adapter (``pc,addr,size,is_load``).

The shape a Pin memory-trace pintool or a gem5 ``MemTrace`` post-process
typically emits: one header line naming the columns, then one memory
reference per row::

    pc,addr,size,is_load
    0x401a20,0x7ffe0010,8,1
    0x401a26,0x7ffe0018,8,0

* **pc**, **addr** — hexadecimal with a ``0x``/``0X`` prefix (any letter
  case in the digits) or plain decimal; at most 64 bits.
* **size** — positive decimal byte count.
* **is_load** — ``1`` (load) or ``0`` (store).

Blank lines and full-line ``#`` comments are tolerated anywhere;
surrounding spaces in cells are stripped.  The same strictness rules as
the DRAMSim2 adapter apply — LF-only line endings, no UTF-8 BOM, a line
length cap, and at least one data row — each failing with a pinned
:class:`~repro.ingest.errors.FormatError` message.
"""

from __future__ import annotations

from typing import List

from .errors import FormatError
from .records import KIND_LOAD, KIND_STORE, MAX_ADDRESS, IngestRecord

__all__ = ["FORMAT_NAME", "HEADER", "MAX_LINE_CHARS", "read", "write"]

FORMAT_NAME = "pincsv"

#: The required header row (spaces around commas tolerated on input).
HEADER = ("pc", "addr", "size", "is_load")

#: Longest accepted line, in characters, after stripping the newline.
MAX_LINE_CHARS = 512


def _parse_int(token: str, column: str, source: str, line: int) -> int:
    text = token.strip()
    try:
        if text[:2].lower() == "0x":
            value = int(text[2:], 16)
        else:
            value = int(text, 10)
    except (ValueError, IndexError):
        raise FormatError(
            f"bad {column} {token.strip()!r}: not a hex (0x...) or"
            f" decimal integer",
            source, line,
        ) from None
    if value < 0 or value > MAX_ADDRESS:
        raise FormatError(
            f"bad {column} {token.strip()!r}: outside 64-bit range",
            source, line,
        )
    return value


def read(data: bytes, source: str = "<pincsv>") -> List[IngestRecord]:
    """Parse a ``pc,addr,size,is_load`` CSV into records."""
    if data.startswith(b"\xef\xbb\xbf"):
        raise FormatError("UTF-8 BOM not allowed", source, line=1)
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as error:
        raise FormatError(
            f"not valid UTF-8 ({error.reason} at byte {error.start})", source
        ) from None
    records: List[IngestRecord] = []
    header_seen = False
    for number, raw in enumerate(text.split("\n"), start=1):
        if raw.endswith("\r"):
            raise FormatError(
                "CRLF line ending; trace files are LF-only", source, number
            )
        if len(raw) > MAX_LINE_CHARS:
            raise FormatError(
                f"line exceeds {MAX_LINE_CHARS} characters ({len(raw)})",
                source, number,
            )
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        cells = [cell.strip() for cell in line.split(",")]
        if not header_seen:
            if tuple(cell.lower() for cell in cells) != HEADER:
                raise FormatError(
                    f"bad header {line!r}: expected"
                    f" {','.join(HEADER)!r}",
                    source, number,
                )
            header_seen = True
            continue
        if len(cells) != len(HEADER):
            raise FormatError(
                f"expected {len(HEADER)} columns"
                f" ({','.join(HEADER)}), got {len(cells)}",
                source, number,
            )
        pc = _parse_int(cells[0], "pc", source, number)
        addr = _parse_int(cells[1], "addr", source, number)
        size = _parse_int(cells[2], "size", source, number)
        if size < 1:
            raise FormatError(
                f"bad size {cells[2]!r}: must be >= 1", source, number
            )
        if cells[3] not in ("0", "1"):
            raise FormatError(
                f"bad is_load {cells[3]!r}: expected 0 or 1", source, number
            )
        records.append(
            IngestRecord(
                kind=KIND_LOAD if cells[3] == "1" else KIND_STORE,
                addr=addr, pc=pc, size=size,
            )
        )
    if not header_seen:
        raise FormatError("no records found", source)
    if not records:
        raise FormatError("no records found (header only)", source)
    return records


def write(records: List[IngestRecord]) -> bytes:
    """Render records as ``pc,addr,size,is_load`` CSV.

    Fetch records have no representation in this format and are
    rejected; a missing PC is written as 0 (the normalizer synthesizes a
    real one on the way back in — see :mod:`repro.ingest.normalize`).
    """
    lines = [",".join(HEADER)]
    for index, record in enumerate(records):
        if record.kind not in (KIND_LOAD, KIND_STORE):
            raise FormatError(
                f"record {index}: kind {record.kind!r} has no CSV"
                f" representation (loads and stores only)"
            )
        pc = record.pc if record.pc is not None else 0
        is_load = 1 if record.kind == KIND_LOAD else 0
        lines.append(f"0x{pc:x},0x{record.addr:x},{record.size},{is_load}")
    return ("\n".join(lines) + "\n").encode("utf-8")
