"""Typed ingestion errors with pinned, conformance-tested messages.

Every parse failure an external trace file can provoke maps to one
:class:`FormatError` whose message text is part of the subsystem's
contract: ``tests/test_ingest_formats.py`` replays the hostile fixture
corpus and asserts the exact wording, so an adapter change that degrades
an error into something vaguer (or swallows it) is a test failure, not a
support ticket.  Registry/manifest problems raise :class:`RegistryError`
instead so callers can tell "your trace file is malformed" apart from
"your benchmark-set declaration is wrong".
"""

from __future__ import annotations

from typing import Optional

__all__ = ["FormatError", "IngestError", "RegistryError"]


class IngestError(ValueError):
    """Base class for every error the ingestion subsystem raises."""


class FormatError(IngestError):
    """A trace file violates its format's grammar.

    Carries the source name and 1-based line number (when known) and
    renders them into a stable ``<name>, line <n>: <reason>`` prefix.
    """

    def __init__(
        self,
        reason: str,
        source: str = "",
        line: Optional[int] = None,
    ) -> None:
        self.reason = reason
        self.source = source
        self.line = line
        prefix = source or "<trace>"
        if line is not None:
            prefix += f", line {line}"
        super().__init__(f"{prefix}: {reason}")


class RegistryError(IngestError):
    """A benchmark-set manifest is malformed or fails validation."""
