"""DRAMSim2-style text trace adapter (the k6 ``<addr> <command> <cycle>``).

Grammar, one record per line::

    <hex address> <command> <cycle>

* **address** — hexadecimal, optional ``0x`` prefix, at most 16 hex
  digits (64 bits), any letter case.
* **command** — ``READ`` / ``WRITE`` / ``P_FETCH``, or the DRAMSim2
  spellings ``P_MEM_RD`` / ``P_MEM_WR``; case-insensitive.
* **cycle** — non-negative decimal integer.

Fields are separated by runs of spaces or tabs.  Blank lines and ``#``
comments (full-line or trailing) are tolerated.  Everything else is a
:class:`~repro.ingest.errors.FormatError` with a pinned message: lines
must be LF-terminated (CRLF is rejected, not silently stripped), the
file must not start with a UTF-8 BOM, no line may exceed
:data:`MAX_LINE_CHARS` characters, and a file with no records at all is
an error — conformance over permissiveness, because a silently
half-parsed trace would poison every figure downstream.
"""

from __future__ import annotations

from typing import Dict, List

from .errors import FormatError
from .records import KIND_FETCH, KIND_LOAD, KIND_STORE, IngestRecord

__all__ = [
    "FORMAT_NAME",
    "MAX_ADDRESS_DIGITS",
    "MAX_LINE_CHARS",
    "read",
    "write",
]

FORMAT_NAME = "dramsim"

#: Widest accepted address: 16 hex digits = 64 bits.
MAX_ADDRESS_DIGITS = 16

#: Longest accepted line, in characters, after stripping the newline.
MAX_LINE_CHARS = 512

#: command token (upper-cased) -> record kind.
COMMANDS: Dict[str, str] = {
    "READ": KIND_LOAD,
    "P_MEM_RD": KIND_LOAD,
    "WRITE": KIND_STORE,
    "P_MEM_WR": KIND_STORE,
    "P_FETCH": KIND_FETCH,
}

#: Canonical command per kind, used by :func:`write`.
_KIND_TO_COMMAND = {
    KIND_LOAD: "READ",
    KIND_STORE: "WRITE",
    KIND_FETCH: "P_FETCH",
}

_EXPECTED_COMMANDS = "READ, WRITE, P_FETCH, P_MEM_RD or P_MEM_WR"


def _decode(data: bytes, source: str) -> str:
    if data.startswith(b"\xef\xbb\xbf"):
        raise FormatError("UTF-8 BOM not allowed", source, line=1)
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError as error:
        raise FormatError(
            f"not valid UTF-8 ({error.reason} at byte {error.start})", source
        ) from None


def parse_address(token: str, source: str, line: int) -> int:
    """Parse one hex address token (shared with the CSV adapter's docs)."""
    body = token[2:] if token[:2].lower() == "0x" else token
    if not body:
        raise FormatError(f"bad address {token!r}: empty", source, line)
    if len(body) > MAX_ADDRESS_DIGITS:
        raise FormatError(
            f"bad address {token!r}: wider than 64 bits"
            f" ({len(body)} hex digits, max {MAX_ADDRESS_DIGITS})",
            source, line,
        )
    try:
        return int(body, 16)
    except ValueError:
        raise FormatError(
            f"bad address {token!r}: not hexadecimal", source, line
        ) from None


def read(data: bytes, source: str = "<dramsim>") -> List[IngestRecord]:
    """Parse DRAMSim2-style text into records (strict; see module docs)."""
    text = _decode(data, source)
    records: List[IngestRecord] = []
    for number, raw in enumerate(text.split("\n"), start=1):
        if raw.endswith("\r"):
            raise FormatError(
                "CRLF line ending; trace files are LF-only", source, number
            )
        if len(raw) > MAX_LINE_CHARS:
            raise FormatError(
                f"line exceeds {MAX_LINE_CHARS} characters"
                f" ({len(raw)})",
                source, number,
            )
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 3:
            raise FormatError(
                f"expected 3 fields '<addr> <command> <cycle>',"
                f" got {len(fields)}",
                source, number,
            )
        addr_token, command_token, cycle_token = fields
        addr = parse_address(addr_token, source, number)
        kind = COMMANDS.get(command_token.upper())
        if kind is None:
            raise FormatError(
                f"unknown command {command_token!r}"
                f" (expected {_EXPECTED_COMMANDS})",
                source, number,
            )
        if not cycle_token.isdigit():
            raise FormatError(
                f"bad cycle {cycle_token!r}: not a non-negative integer",
                source, number,
            )
        records.append(
            IngestRecord(kind=kind, addr=addr, cycle=int(cycle_token))
        )
    if not records:
        raise FormatError("no records found", source)
    return records


def write(records: List[IngestRecord]) -> bytes:
    """Render records as DRAMSim2-style text (the round-trip writer).

    PCs and sizes are not representable in this format and are dropped;
    a missing cycle is synthesized as ``index * 10`` (matching the
    cadence of published DRAMSim2 example traces).
    """
    lines = []
    for index, record in enumerate(records):
        cycle = record.cycle if record.cycle is not None else index * 10
        lines.append(
            f"0x{record.addr:x} {_KIND_TO_COMMAND[record.kind]} {cycle}"
        )
    return ("\n".join(lines) + "\n").encode("utf-8")
