"""Flight recorder: per-session rings and postmortem manifests."""

import json

import pytest

from repro.obs.flight import (
    POSTMORTEM_SCHEMA_ID,
    FlightRecorder,
    validate_postmortem,
)


class TestRings:
    def test_record_and_read_back(self):
        flight = FlightRecorder()
        flight.record("s1", "open", peer="127.0.0.1")
        flight.record("s1", "feed.enqueued", events=100)
        events = flight.events("s1")
        assert [e[2] for e in events] == ["open", "feed.enqueued"]
        assert events[0][3] == {"peer": "127.0.0.1"}
        assert events[0][0] < events[1][0]  # sequence numbers ascend

    def test_ring_is_bounded(self):
        flight = FlightRecorder(capacity=3)
        for i in range(10):
            flight.record("s1", f"k{i}")
        assert [e[2] for e in flight.events("s1")] == ["k7", "k8", "k9"]

    def test_sessions_are_isolated(self):
        flight = FlightRecorder()
        flight.record("a", "open")
        flight.record("b", "open")
        assert len(flight) == 2
        flight.discard("a")
        assert len(flight) == 1
        assert flight.events("a") == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestPostmortem:
    def test_document_validates_and_uses_relative_time(self):
        flight = FlightRecorder()
        flight.record("s1", "open")
        flight.record("s1", "feed.timeout", budget_s=0.1)
        doc = flight.postmortem("s1", "timeout", context={"peer": "x"})
        assert doc["schema"] == POSTMORTEM_SCHEMA_ID
        assert doc["session"] == "s1"
        assert doc["reason"] == "timeout"
        assert doc["events_recorded"] == 2
        assert doc["events"][0]["t_s"] == 0.0  # relative to first event
        assert doc["events"][1]["t_s"] >= 0.0
        assert doc["context"] == {"peer": "x"}
        assert validate_postmortem(doc) == []

    def test_empty_session_still_produces_valid_doc(self):
        doc = FlightRecorder().postmortem("ghost", "drop")
        assert doc["events"] == []
        assert validate_postmortem(doc) == []

    def test_dump_writes_atomic_json_and_consumes_ring(self, tmp_path):
        flight = FlightRecorder()
        flight.record("s1", "open")
        path = flight.dump("s1", "timeout", tmp_path)
        assert path.name == "postmortem-s1-timeout.json"
        assert not list(tmp_path.glob("*.tmp"))
        document = json.loads(path.read_text(encoding="utf-8"))
        assert validate_postmortem(document) == []
        assert len(flight) == 0  # ring consumed

    def test_dump_creates_directory(self, tmp_path):
        flight = FlightRecorder()
        flight.record("s1", "open")
        path = flight.dump("s1", "drop", tmp_path / "nested" / "dir")
        assert path.exists()

    def test_validation_catches_missing_fields(self):
        doc = FlightRecorder().postmortem("s", "drop")
        del doc["reason"]
        assert validate_postmortem(doc)
        assert validate_postmortem({"schema": POSTMORTEM_SCHEMA_ID})
