"""Focused tests on Section 5 mechanics: misprediction propagation,
suppression windows, and speculative-state repair."""

from repro.predictors import CAPConfig, CAPPredictor, StridePredictor
from repro.predictors.base import lb_key


class TestCAPDominoEffect:
    """Section 5.2: 'Any single misprediction has a domino effect.'"""

    def _train_ring(self, p, bases, reps, offset=8):
        for _ in range(reps):
            for b in bases:
                pred = p.predict(0x100, offset)
                p.update(0x100, offset, b + offset, pred)

    def test_suppression_set_on_wrong_resolution(self):
        bases = [0x2000_0000 + 0x40 * k for k in (1, 5, 3, 7)]
        p = CAPPredictor()
        p.speculative_mode = True
        self._train_ring(p, bases, 30)
        state = p.load_buffer.peek(lb_key(0x100))

        # Three in-flight predictions, then resolve the first one WRONG.
        inflight = [p.predict(0x100, 8) for _ in range(3)]
        p.update(0x100, 8, 0x5000_0008, inflight[0])
        assert state.suppress == state.pending  # wrong-path drain window
        assert state.spec_history == state.history  # repaired

    def test_suppression_blocks_speculation(self):
        bases = [0x2000_0000 + 0x40 * k for k in (1, 5, 3, 7)]
        p = CAPPredictor()
        p.speculative_mode = True
        self._train_ring(p, bases, 30)
        inflight = [p.predict(0x100, 8) for _ in range(3)]
        p.update(0x100, 8, 0x5000_0008, inflight[0])
        assert not p.predict(0x100, 8).speculative

    def test_suppression_drains(self):
        bases = [0x2000_0000 + 0x40 * k for k in (1, 5, 3, 7)]
        p = CAPPredictor()
        p.speculative_mode = True
        self._train_ring(p, bases, 30)
        state = p.load_buffer.peek(lb_key(0x100))
        inflight = [p.predict(0x100, 8) for _ in range(2)]
        p.update(0x100, 8, 0x5000_0008, inflight[0])
        # Resolve the remaining in-flight instances (also wrong-path, so
        # train with whatever they predicted).
        p.update(0x100, 8, bases[0] + 8, inflight[1])
        assert state.pending == 0
        # Counter hit zero (suppress may re-arm only on further wrongs).
        assert state.suppress <= 1

    def test_no_catch_up_for_context_predictors(self):
        """After repair the spec history equals the architectural history —
        CAP cannot extrapolate (Section 5.2)."""
        bases = [0x2000_0000 + 0x40 * k for k in (1, 5, 3, 7)]
        p = CAPPredictor()
        p.speculative_mode = True
        self._train_ring(p, bases, 30)
        state = p.load_buffer.peek(lb_key(0x100))
        pred = p.predict(0x100, 8)
        p.update(0x100, 8, 0x5000_0008, pred)
        assert state.spec_history == state.history


class TestStrideCatchUpWindow:
    def test_new_predictions_correct_immediately_after_catch_up(self):
        """Section 5.2: 'the stride predictor may catch up easily once the
        misprediction is found' — new predictions extrapolate correctly
        while old ones are still pending."""
        p = StridePredictor()
        p.speculative_mode = True
        # Train a 16-byte stride.
        for i in range(12):
            pred = p.predict(0x100, 0)
            p.update(0x100, 0, 0x2000 + 16 * i, pred)
        # Two in-flight predictions, then the stream JUMPS to a new array
        # (single wrong stride), resolved for the older in-flight one.
        inflight = [p.predict(0x100, 0) for _ in range(2)]
        p.update(0x100, 0, 0x9000, inflight[0])
        # The next prediction must extrapolate: 0x9000 + 16*(pending=1) + 16.
        pred = p.predict(0x100, 0)
        assert pred.address == 0x9000 + 16 * 2

    def test_confidence_reset_throttles_speculation_not_prediction(self):
        p = StridePredictor()
        p.speculative_mode = True
        for i in range(12):
            pred = p.predict(0x100, 0)
            p.update(0x100, 0, 0x2000 + 16 * i, pred)
        pred = p.predict(0x100, 0)
        p.update(0x100, 0, 0x9000, pred)          # wrong -> conf reset
        nxt = p.predict(0x100, 0)
        assert nxt.made                           # prediction still offered
        assert not nxt.speculative                # but not speculated


class TestEvictionRobustness:
    def test_pending_counters_survive_eviction(self):
        """LB entries can be evicted with predictions in flight; the
        replacement entry must not underflow its counters."""
        config = CAPConfig(lb_entries=4, lb_ways=1)
        p = CAPPredictor(config)
        p.speculative_mode = True
        preds = {}
        for ip in range(0x100, 0x100 + 4 * 40, 4):
            preds[ip] = p.predict(ip, 0)
        # Resolve them all; most entries were evicted in between.
        for ip, pred in preds.items():
            p.update(ip, 0, 0x2000, pred)
        for key, state in p.load_buffer:
            assert state.pending >= 0
            assert state.suppress >= 0
