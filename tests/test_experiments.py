"""Smoke tests for the per-figure experiment drivers.

These run on two tiny traces so the whole module stays fast; the real
numbers come from the benchmark harness.
"""

import pytest

from repro.eval import experiments as E

TRACES = ["INT_xli", "MM_aud"]
INSTR = 8000


@pytest.fixture(scope="module", autouse=True)
def _isolated_cache(tmp_path_factory):
    import os

    old = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = str(tmp_path_factory.mktemp("cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_TRACE_CACHE", None)
    else:
        os.environ["REPRO_TRACE_CACHE"] = old


class TestFig5:
    def test_runs_and_renders(self):
        result = E.fig5(traces=TRACES, instructions=INSTR)
        assert set(result.variants) == {"stride", "cap", "hybrid"}
        text = result.render()
        assert "Average" in text and "hybrid" in text

    def test_rates_in_range(self):
        result = E.fig5(traces=TRACES, instructions=INSTR)
        for variant in result.variants:
            avg = result.average(variant)
            assert 0.0 <= avg.prediction_rate <= 1.0
            assert avg.loads > 0


class TestFig6:
    def test_geometry_labels(self):
        result = E.fig6(traces=TRACES, instructions=INSTR,
                        geometries=[(512, 1), (1024, 2)])
        assert result.variants == ["0K,1way", "1K,2way"]
        assert result.render()


class TestLTSweep:
    def test_sizes(self):
        result = E.lt_sweep(traces=TRACES, instructions=INSTR,
                            sizes=[256, 1024])
        assert result.variants == ["LT 0K", "LT 1K"]


class TestFig7:
    def test_speedups_positive(self):
        result = E.fig7(traces=TRACES, instructions=INSTR)
        for trace, per_variant in result.per_trace.items():
            for variant, value in per_variant.items():
                assert value > 0.5
        averages = result.suite_average("hybrid")
        assert "Average" in averages
        assert result.render()


class TestFig8:
    def test_selector_distribution_sums_to_one(self):
        result = E.fig8(traces=TRACES, instructions=INSTR)
        for suite, dist in result.distributions.items():
            if dist:
                assert sum(dist.values()) == pytest.approx(1.0)
        assert result.render()


class TestFig9:
    def test_two_series(self):
        result = E.fig9(traces=["INT_xli"], instructions=INSTR,
                        lengths=[1, 2, 4])
        assert set(result.series) == {
            "global correlation", "no global correlation",
        }
        assert all(len(v) == 3 for v in result.series.values())
        assert result.best_length("global correlation") in (1, 2, 4)
        assert result.render()


class TestFig10:
    def test_configs_present(self):
        result = E.fig10(traces=["INT_xli"], instructions=INSTR)
        assert "no tag" in result.configs
        assert "8-bit tag + path" in result.configs
        for cfg in result.configs:
            assert 0.0 <= result.misprediction_rate[cfg] <= 1.0
        assert result.render()


class TestFig11:
    def test_gap_series(self):
        result = E.fig11(traces=TRACES, instructions=INSTR, gaps=[0, 4])
        assert set(result.series) == {"stride", "hybrid"}
        for per_gap in result.series.values():
            assert set(per_gap) == {0, 4}
        assert result.render()


class TestFig12:
    def test_pipelined_speedups(self):
        result = E.fig12(traces=["INT_xli"], instructions=INSTR, gap=4)
        assert any("g4" in v for v in result.variants)
        assert result.render()


class TestBaselinesAndControl:
    def test_baselines(self):
        result = E.baselines(traces=TRACES, instructions=INSTR)
        assert "last" in result.variants

    def test_control_based(self):
        result = E.control_based(traces=["INT_xli"], instructions=INSTR)
        assert set(result.variants) == {"gshare", "call-path", "cap"}


class TestQuickSet:
    def test_sixteen_traces(self):
        names = E.quick_trace_set()
        assert len(names) == 16
        assert len(set(names)) == 16


class TestValueVsAddress:
    def test_rows_and_render(self):
        result = E.value_vs_address(traces=TRACES, instructions=INSTR)
        assert set(result.rows) == {
            "last-value", "stride-value", "hybrid (address)",
        }
        for rate, acc, ceiling in result.rows.values():
            assert 0.0 <= rate <= 1.0
            assert 0.0 <= ceiling <= 1.0
        assert "predictability" in result.render() or "value" in result.render()

    def test_addresses_beat_values(self):
        result = E.value_vs_address(traces=TRACES, instructions=INSTR)
        addr_rate = result.rows["hybrid (address)"][0]
        assert addr_rate >= result.rows["last-value"][0]
