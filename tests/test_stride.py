"""Tests for the stride predictor: two-delta, interval, CFI, catch-up."""

from repro.predictors import StrideConfig, StridePredictor
from repro.predictors.confidence import CFI_OFF


def drive(predictor, ip, addresses, offset=0):
    spec = correct = 0
    for addr in addresses:
        p = predictor.predict(ip, offset)
        if p.speculative:
            spec += 1
            if p.address == addr:
                correct += 1
        predictor.update(ip, offset, addr, p)
    return spec, correct


def array_walk(base, n, stride=16):
    return [base + stride * i for i in range(n)]


class TestBasicStride:
    def test_learns_stride(self):
        p = StridePredictor(StrideConfig.basic())
        spec, correct = drive(p, 0x100, array_walk(0x2000, 20))
        assert spec >= 15
        assert correct == spec

    def test_constant_address_is_stride_zero(self):
        p = StridePredictor(StrideConfig.basic())
        spec, correct = drive(p, 0x100, [0x2000] * 10)
        assert spec >= 6 and correct == spec

    def test_two_delta_ignores_single_blip(self):
        """One odd delta must not destroy a learned stride."""
        p = StridePredictor(StrideConfig.basic())
        walk = array_walk(0x2000, 10)
        drive(p, 0x100, walk)
        drive(p, 0x100, [0x9000])              # blip
        # Prediction resumes from the blip with the OLD stride.
        pred = p.predict(0x100, 0)
        assert pred.address == 0x9000 + 16

    def test_one_delta_variant_chases_blips(self):
        p = StridePredictor(StrideConfig.basic(two_delta=False))
        drive(p, 0x100, array_walk(0x2000, 10))
        drive(p, 0x100, [0x9000])
        pred = p.predict(0x100, 0)
        # Stride was immediately replaced by the blip delta.
        assert pred.address != 0x9000 + 16

    def test_negative_stride(self):
        p = StridePredictor(StrideConfig.basic())
        walk = [0x3000 - 8 * i for i in range(15)]
        spec, correct = drive(p, 0x100, walk)
        assert correct == spec and spec >= 10

    def test_random_addresses_not_speculated(self):
        import random

        rng = random.Random(1)
        p = StridePredictor(StrideConfig.basic())
        spec, _ = drive(
            p, 0x100, [rng.randrange(2**20) * 4 for _ in range(100)]
        )
        assert spec <= 2


class TestInterval:
    def test_interval_learned_at_wrap(self):
        p = StridePredictor(StrideConfig())
        walk = array_walk(0x2000, 20)
        drive(p, 0x100, walk * 2)
        from repro.predictors.base import lb_key

        state = p.table.peek(lb_key(0x100))
        assert state.interval > 0

    def test_interval_suppresses_wrap_misprediction(self):
        p = StridePredictor(StrideConfig())
        walk = array_walk(0x2000, 30)
        drive(p, 0x100, walk * 2)          # learn array length
        spec, correct = drive(p, 0x100, walk * 4)
        # Accuracy near-perfect: the wrap mispredictions are silenced.
        assert correct >= spec - 1

    def test_no_interval_pays_at_wraps(self):
        p = StridePredictor(StrideConfig(use_interval=False, cfi_mode=CFI_OFF))
        walk = array_walk(0x2000, 30)
        drive(p, 0x100, walk * 2)
        spec, correct = drive(p, 0x100, walk * 4)
        assert spec - correct >= 3          # one miss per wrap


class TestCFI:
    def test_cfi_blocks_bad_path(self):
        p = StridePredictor(StrideConfig())
        # Train a solid stride, then mispredict under a distinctive GHR.
        drive(p, 0x100, array_walk(0x2000, 10))
        p.ghr = 0b1010
        pred = p.predict(0x100, 0)
        assert pred.speculative
        p.update(0x100, 0, 0xDEAD0, pred)   # wrong -> records GHR 1010
        p.ghr = 0b0000                       # retrain on a different path
        drive(p, 0x100, array_walk(0xDEAD0, 6))
        p.ghr = 0b1010
        assert not p.predict(0x100, 0).speculative
        p.ghr = 0b0101
        assert p.predict(0x100, 0).speculative


class TestSpeculativeMode:
    def test_gap_zero_equivalence(self):
        """speculative_mode with immediate updates == plain mode."""
        walk = array_walk(0x2000, 40) * 3
        plain = StridePredictor()
        spec1, corr1 = drive(plain, 0x100, walk)
        spec_mode = StridePredictor()
        spec_mode.speculative_mode = True
        spec2, corr2 = drive(spec_mode, 0x100, walk)
        # Immediate updates keep spec state synced: same outcome.
        assert (spec1, corr1) == (spec2, corr2)

    def test_catch_up_extrapolates(self):
        """After a wrong resolution the spec address jumps pending strides."""
        from repro.predictors.base import lb_key
        from repro.predictors.stride import StrideState

        p = StridePredictor()
        p.speculative_mode = True
        # Train the stride through normal operation.
        preds = []
        addrs = array_walk(0x2000, 12)
        for i, addr in enumerate(addrs):
            pred = p.predict(0x100, 0)
            preds.append(pred)
            p.update(0x100, 0, addr, pred)
        state = p.table.peek(lb_key(0x100))
        assert state.stride == 16
        # Simulate three in-flight predictions, then a surprise jump.
        inflight = [p.predict(0x100, 0) for _ in range(3)]
        p.update(0x100, 0, 0x8000, inflight[0])   # wrong!
        # Catch-up: spec_last = 0x8000 + stride * pending(2).
        assert state.spec_last_addr == 0x8000 + 16 * 2
