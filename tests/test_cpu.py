"""Tests for the functional CPU: instruction semantics and trace emission."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU, CPUError
from repro.isa.memory import AddressSpace, Memory
from repro.trace.event import (
    KIND_ALU,
    KIND_BRANCH,
    KIND_CALL,
    KIND_LOAD,
    KIND_RET,
    KIND_STORE,
)
from repro.trace.trace import Trace


def run(source, memory=None, max_instructions=100_000, trace=False):
    cpu = CPU(memory or Memory())
    t = Trace("t") if trace else None
    result = cpu.run(assemble(source), max_instructions=max_instructions, trace=t)
    return result, cpu, t


class TestArithmetic:
    def test_li_add(self):
        result, _, _ = run("li r1, 3\nli r2, 4\nadd r3, r1, r2\nhalt")
        assert result.registers[3] == 7

    def test_sub_wraps_unsigned(self):
        result, _, _ = run("li r1, 1\nli r2, 2\nsub r3, r1, r2\nhalt")
        assert result.registers[3] == 0xFFFFFFFF

    def test_mul_wraps_32bit(self):
        result, _, _ = run(
            "li r1, 0x10000\nli r2, 0x10001\nmul r3, r1, r2\nhalt"
        )
        assert result.registers[3] == 0x10000 & 0xFFFFFFFF

    def test_div_mod(self):
        result, _, _ = run(
            "li r1, 17\nli r2, 5\ndiv r3, r1, r2\nmod r4, r1, r2\nhalt"
        )
        assert result.registers[3] == 3
        assert result.registers[4] == 2

    def test_div_by_zero_raises(self):
        with pytest.raises(CPUError, match="division by zero"):
            run("li r1, 1\nli r2, 0\ndiv r3, r1, r2\nhalt")

    def test_logic_and_shifts(self):
        result, _, _ = run(
            """
            li r1, 0b1100
            li r2, 0b1010
            and r3, r1, r2
            or  r4, r1, r2
            xor r5, r1, r2
            li r6, 2
            shl r7, r1, r6
            shr r8, r1, r6
            halt
            """
        )
        regs = result.registers
        assert regs[3] == 0b1000
        assert regs[4] == 0b1110
        assert regs[5] == 0b0110
        assert regs[7] == 0b110000
        assert regs[8] == 0b11

    def test_immediates(self):
        result, _, _ = run(
            "li r1, 10\naddi r2, r1, -3\nmuli r3, r1, 4\nandi r4, r1, 6\nhalt"
        )
        assert result.registers[2] == 7
        assert result.registers[3] == 40
        assert result.registers[4] == 2

    def test_li_negative_wraps(self):
        result, _, _ = run("li r1, -1\nhalt")
        assert result.registers[1] == 0xFFFFFFFF


class TestBranches:
    def test_loop_counts(self):
        result, _, _ = run(
            """
            li r1, 5
            li r2, 0
            loop:
                addi r2, r2, 1
                addi r1, r1, -1
                bne r1, r0, loop
            halt
            """
        )
        assert result.registers[2] == 5

    def test_signed_blt(self):
        # -1 (0xFFFFFFFF unsigned) must compare less than 1.
        result, _, _ = run(
            """
            li r1, -1
            li r2, 1
            li r3, 0
            blt r1, r2, less
            halt
            less:
                li r3, 99
                halt
            """
        )
        assert result.registers[3] == 99

    def test_bge_signed(self):
        result, _, _ = run(
            """
            li r1, 1
            li r2, -1
            li r3, 0
            bge r1, r2, ge
            halt
            ge: li r3, 1
            halt
            """
        )
        assert result.registers[3] == 1

    def test_beq_not_taken_falls_through(self):
        result, _, _ = run(
            "li r1, 1\nli r2, 2\nbeq r1, r2, skip\nli r3, 7\nskip: halt"
        )
        assert result.registers[3] == 7


class TestMemoryOps:
    def test_load_store(self):
        result, _, _ = run(
            "li r1, 0x2000\nli r2, 55\nst r2, 8(r1)\nld r3, 8(r1)\nhalt"
        )
        assert result.registers[3] == 55

    def test_load_uninitialised_is_zero(self):
        result, _, _ = run("li r1, 0x3000\nld r2, 0(r1)\nhalt")
        assert result.registers[2] == 0


class TestStackAndCalls:
    def test_push_pop(self):
        result, _, _ = run("li r1, 9\npush r1\nli r1, 0\npop r2\nhalt")
        assert result.registers[2] == 9

    def test_sp_restored_after_push_pop(self):
        result, _, _ = run("push r1\npop r2\nhalt")
        from repro.isa.instructions import SP

        assert result.registers[SP] == AddressSpace.STACK_BASE

    def test_call_ret(self):
        result, _, _ = run(
            """
            main:
                call fn
                halt
            fn:
                li r1, 42
                ret
            """
        )
        assert result.registers[1] == 42

    def test_nested_calls(self):
        result, _, _ = run(
            """
            main:
                call outer
                halt
            outer:
                call inner
                addi r1, r1, 1
                ret
            inner:
                li r1, 10
                ret
            """
        )
        assert result.registers[1] == 11

    def test_recursion(self):
        # r1 = sum of 1..5 by recursion.
        result, _, _ = run(
            """
            main:
                li r1, 5
                li r2, 0
                call sum
                halt
            sum:
                beq r1, r0, done
                add r2, r2, r1
                addi r1, r1, -1
                push r1
                call sum
                pop r1
            done:
                ret
            """
        )
        assert result.registers[2] == 15

    def test_jr_indirect(self):
        source = """
        main:
            li r1, 0x100c
            jr r1
            nop
            halt
        """
        result, _, _ = run(source)
        assert result.halted
        assert result.instructions == 3  # li, jr, halt (nop skipped)


class TestLimitsAndErrors:
    def test_instruction_limit(self):
        result, _, _ = run("loop: jmp loop", max_instructions=500)
        assert result.hit_limit
        assert result.instructions == 500

    def test_halt_sets_flag(self):
        result, _, _ = run("halt")
        assert result.halted and not result.hit_limit

    def test_empty_program(self):
        cpu = CPU()
        from repro.isa.program import ProgramBuilder

        result = cpu.run(ProgramBuilder().build())
        assert result.instructions == 0 and result.halted

    def test_pc_fell_off_end(self):
        with pytest.raises(CPUError, match="PC"):
            run("nop")


class TestTraceEmission:
    def test_kinds_recorded(self):
        _, _, t = run(
            """
            main:
                li r1, 0x2000
                ld r2, 4(r1)
                st r2, 8(r1)
                beq r2, r0, over
            over:
                call fn
                halt
            fn:
                push r1
                pop r3
                ret
            """,
            trace=True,
        )
        kinds = t.kind
        assert KIND_ALU in kinds
        assert KIND_LOAD in kinds
        assert KIND_STORE in kinds
        assert KIND_BRANCH in kinds
        assert KIND_CALL in kinds
        assert KIND_RET in kinds

    def test_load_event_fields(self):
        _, _, t = run("li r1, 0x2000\nld r2, 12(r1)\nhalt", trace=True)
        loads = list(t.loads())
        assert len(loads) == 1
        assert loads[0].addr == 0x200C
        assert loads[0].offset == 12

    def test_branch_taken_flag(self):
        _, _, t = run(
            "li r1, 1\nbne r1, r0, over\nnop\nover: beq r1, r0, end\nend: halt",
            trace=True,
        )
        branch_takens = [
            t.taken[i] for i in range(len(t)) if t.kind[i] == KIND_BRANCH
        ]
        assert branch_takens == [1, 0]

    def test_call_ret_touch_stack_memory(self):
        _, _, t = run("main: call fn\nhalt\nfn: ret", trace=True)
        call_idx = t.kind.index(KIND_CALL)
        ret_idx = t.kind.index(KIND_RET)
        assert t.addr[call_idx] == t.addr[ret_idx]  # same stack slot

    def test_trace_length_equals_retired_minus_halt(self):
        result, _, t = run("nop\nnop\nhalt", trace=True)
        # halt breaks before recording.
        assert len(t) == result.instructions - 1
