"""Wire protocol: framing, partial delivery, hostile inputs."""

import struct

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    KIND_EVENTS,
    KIND_JSON,
    MAX_FRAME,
    FrameReader,
    ProtocolError,
    decode_events,
    decode_json,
    encode_events,
    encode_frame,
    encode_json,
    parse_feed_events,
)

EVENTS = [(1, 0x4000, 1234, 8), (0, 0x4004, 1, 0), (1, 0x4008, -7, -1)]


class TestFraming:
    def test_json_roundtrip_single_push(self):
        frame = encode_json({"type": "ping", "n": 3})
        reader = FrameReader()
        frames = list(reader.push(frame))
        assert frames == [(KIND_JSON, b'{"type":"ping","n":3}')]
        assert decode_json(frames[0][1]) == {"type": "ping", "n": 3}

    def test_partial_frames_byte_by_byte(self):
        # A header split across TCP segments and a payload arriving one
        # byte at a time must still parse into exactly the sent frames.
        wire = encode_json({"a": 1}) + encode_events(EVENTS)
        reader = FrameReader()
        collected = []
        for i in range(len(wire)):
            collected.extend(reader.push(wire[i : i + 1]))
        assert len(collected) == 2
        assert collected[0] == (KIND_JSON, b'{"a":1}')
        assert collected[1][0] == KIND_EVENTS
        assert decode_events(collected[1][1]) == EVENTS
        assert reader.pending_bytes == 0

    def test_many_frames_one_push(self):
        wire = b"".join(encode_json({"i": i}) for i in range(10))
        frames = list(FrameReader().push(wire))
        assert [decode_json(p)["i"] for _, p in frames] == list(range(10))

    def test_pending_bytes_tracks_incomplete_frame(self):
        frame = encode_json({"x": 1})
        reader = FrameReader()
        assert list(reader.push(frame[:5])) == []
        assert reader.pending_bytes == 5

    def test_oversized_length_prefix_rejected_before_body(self):
        # The reader must raise on the prefix alone — it never buffers
        # (or waits for) an attacker-sized body.
        header = struct.pack(">I", MAX_FRAME + 1)
        with pytest.raises(ProtocolError, match="exceeds maximum"):
            list(FrameReader().push(header))

    def test_custom_max_frame(self):
        small = FrameReader(max_frame=16)
        with pytest.raises(ProtocolError, match="exceeds maximum"):
            list(small.push(encode_json({"k": "v" * 64})))

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError, match="< 1"):
            list(FrameReader().push(struct.pack(">I", 0)))

    def test_encode_frame_rejects_oversized_payload(self):
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
            encode_frame(KIND_JSON, b"x" * MAX_FRAME)


class TestPayloads:
    def test_events_roundtrip_with_negatives(self):
        assert decode_events(
            encode_events(EVENTS)[5:]  # strip header + kind byte
        ) == EVENTS

    def test_encode_events_rejects_non_quadruple(self):
        with pytest.raises(ProtocolError, match="quadruple"):
            encode_events([(1, 2, 3)])

    def test_decode_events_rejects_ragged_payload(self):
        with pytest.raises(ProtocolError, match="not a multiple"):
            decode_events(b"\x00" * 33)

    def test_decode_json_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            decode_json(b"[1,2]")

    def test_decode_json_rejects_bad_bytes(self):
        with pytest.raises(ProtocolError, match="bad JSON"):
            decode_json(b"\xff\xfe{")


class TestParseFeedEvents:
    def test_binary_kind(self):
        payload = encode_events(EVENTS)[5:]
        assert parse_feed_events(KIND_EVENTS, payload) == EVENTS

    def test_json_feed(self):
        message = {"type": "feed", "events": [[1, 2, 3, 4], [0, 5, 1, 0]]}
        payload = encode_json(message)[5:]
        assert parse_feed_events(KIND_JSON, payload) == [
            (1, 2, 3, 4), (0, 5, 1, 0),
        ]

    def test_json_wrong_type_rejected(self):
        payload = encode_json({"type": "open"})[5:]
        with pytest.raises(ProtocolError, match="expected a feed"):
            parse_feed_events(KIND_JSON, payload)

    def test_json_events_must_be_list(self):
        payload = encode_json({"type": "feed", "events": 7})[5:]
        with pytest.raises(ProtocolError, match="must be a list"):
            parse_feed_events(KIND_JSON, payload)

    def test_json_event_must_be_quadruple(self):
        payload = encode_json({"type": "feed", "events": [[1, 2]]})[5:]
        with pytest.raises(ProtocolError, match="quadruple"):
            parse_feed_events(KIND_JSON, payload)

    def test_error_message_shape(self):
        assert protocol.error_message("overloaded", "queue full") == {
            "type": "error", "code": "overloaded", "detail": "queue full",
        }
