"""Engine correctness: serial/parallel equivalence, job model, cache locking."""

import multiprocessing
import os
from pathlib import Path

import pytest

from repro.eval import experiments as E
from repro.eval.engine import (
    FACTORIES,
    KIND_VERIFY,
    Job,
    build_predictor,
    execute_job,
    resolve_jobs,
    run_jobs,
)
from repro.pipeline.delayed import PipelinedPredictor
from repro.workloads import suites

TRACES = ["INT_xli", "MM_aud", "GAM_duk"]
INSTR = 8000


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))


@pytest.fixture()
def serial(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "1")


def _metric_tuple(m):
    return (
        m.name, m.trace, m.suite, m.loads, m.predictions, m.speculative,
        m.correct_speculative, m.correct_predictions,
    )


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_cpu_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestJobModel:
    def test_unknown_factory_raises(self):
        with pytest.raises(KeyError, match="unknown predictor factory"):
            build_predictor(Job(trace="INT_xli", factory="nope"))

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            execute_job(Job(trace="INT_xli", factory="hybrid", kind="bogus"))

    def test_gap_wraps_in_pipelined(self):
        predictor = build_predictor(
            Job(trace="INT_xli", factory="stride", gap=4)
        )
        assert isinstance(predictor, PipelinedPredictor)
        assert predictor.gap == 4

    def test_gap_zero_still_wraps(self):
        # Figure 11's gap sweep includes gap 0 *wrapped*; None means bare.
        assert isinstance(
            build_predictor(Job(trace="t", factory="stride", gap=0)),
            PipelinedPredictor,
        )
        assert not isinstance(
            build_predictor(Job(trace="t", factory="stride")),
            PipelinedPredictor,
        )

    def test_every_factory_builds(self):
        for name in FACTORIES:
            assert build_predictor(Job(trace="t", factory=name)) is not None

    def test_predict_job_executes(self, serial):
        result = execute_job(Job(
            trace="INT_xli", factory="hybrid", instructions=INSTR,
            variant="hybrid",
        ))
        assert result.variant == "hybrid"
        assert result.suite == "INT"
        assert result.metrics.loads > 0

    def test_timing_baseline_job(self, serial):
        result = execute_job(Job(
            trace="INT_xli", instructions=INSTR, kind="timing",
            variant="base",
        ))
        assert result.cycles > 0
        assert result.metrics is None

    def test_capture_selector(self, serial):
        result = execute_job(Job(
            trace="INT_xli", factory="hybrid", instructions=INSTR,
            capture_selector=True,
        ))
        assert result.selector_stats is not None
        assert result.selector_stats.speculative >= 0

    def test_warmup_fraction_reduces_counted_loads(self, serial):
        full = execute_job(Job(
            trace="INT_xli", factory="stride", instructions=INSTR,
        ))
        warm = execute_job(Job(
            trace="INT_xli", factory="stride", instructions=INSTR,
            warmup_fraction=0.5,
        ))
        assert 0 < warm.metrics.loads < full.metrics.loads


class TestSerialParallelIdentity:
    """REPRO_JOBS=1 and multi-process runs must be bit-identical."""

    @pytest.mark.parametrize("variant,overrides", [
        ("stride", {}),
        ("cap", {}),
        ("hybrid", {"lb_entries": 1024}),
    ])
    def test_job_grid_identical(self, monkeypatch, variant, overrides):
        jobs = [
            Job(trace=name, factory=variant, overrides=overrides,
                instructions=INSTR, variant=variant)
            for name in TRACES
        ]
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial_results = run_jobs(jobs)
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel_results = run_jobs(jobs)
        assert [_metric_tuple(r.metrics) for r in serial_results] == \
               [_metric_tuple(r.metrics) for r in parallel_results]

    def test_fig5_grid_identical_and_ordered(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial_result = E.fig5(traces=TRACES, instructions=INSTR)
        monkeypatch.setenv("REPRO_JOBS", "3")
        parallel_result = E.fig5(traces=TRACES, instructions=INSTR)
        assert serial_result.variants == parallel_result.variants
        for variant in serial_result.variants:
            assert [_metric_tuple(m) for m in serial_result.runs[variant]] == \
                   [_metric_tuple(m) for m in parallel_result.runs[variant]]
            # Per-variant runs keep roster order regardless of completion.
            assert [m.trace for m in parallel_result.runs[variant]] == TRACES

    def test_fig5_result_dicts_byte_identical(self, monkeypatch):
        """Stronger than tuple equality: the *entire* serialized result —
        every counter of every per-trace metric plus the per-suite
        aggregates — must not change with the worker count."""
        import json

        def snapshot(result):
            return json.dumps(
                {
                    "variants": result.variants,
                    "runs": {
                        variant: [vars(m) for m in metrics_list]
                        for variant, metrics_list in result.runs.items()
                    },
                    "suites": {
                        variant: {
                            suite: vars(sm.combined)
                            for suite, sm in per_suite.items()
                        }
                        for variant, per_suite in result.suites.items()
                    },
                },
                sort_keys=True,
            )

        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = snapshot(E.fig5(traces=TRACES, instructions=INSTR))
        monkeypatch.setenv("REPRO_JOBS", "3")
        parallel = snapshot(E.fig5(traces=TRACES, instructions=INSTR))
        assert serial == parallel

    def test_fig12_timing_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial_result = E.fig12(traces=TRACES[:2], instructions=INSTR, gap=4)
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel_result = E.fig12(traces=TRACES[:2], instructions=INSTR, gap=4)
        assert serial_result.per_trace == parallel_result.per_trace
        assert serial_result.base_cycles == parallel_result.base_cycles

    def test_explicit_max_workers_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        jobs = [
            Job(trace=name, factory="stride", instructions=INSTR,
                variant="stride")
            for name in TRACES
        ]
        results = run_jobs(jobs, max_workers=2)
        assert [r.trace for r in results] == TRACES


class TestVerifyJobs:
    """kind="verify" jobs run the differential harness through the engine."""

    def test_verify_job_executes_clean(self, serial):
        result = execute_job(Job(
            trace="INT_xli", kind=KIND_VERIFY, variant="cap",
            instructions=INSTR,
        ))
        assert result.variant == "cap"
        assert result.suite == "INT"
        assert result.divergence is None
        assert result.metrics is None

    def test_verify_jobs_parallelise(self, monkeypatch):
        jobs = [
            Job(trace=name, kind=KIND_VERIFY, variant=variant,
                instructions=INSTR)
            for name in TRACES[:2]
            for variant in ("stride", "hybrid")
        ]
        monkeypatch.setenv("REPRO_JOBS", "2")
        results = run_jobs(jobs)
        assert [(r.trace, r.variant) for r in results] == \
               [(j.trace, j.variant) for j in jobs]
        assert all(r.divergence is None for r in results)


def _get_trace_worker(args):
    name, instructions, cache_dir = args
    os.environ["REPRO_TRACE_CACHE"] = cache_dir
    trace = suites.get_trace(name, instructions)
    return len(trace), trace.predictor_columns().loads


class TestCacheLocking:
    def test_cold_cache_concurrent_generation(self, tmp_path):
        """Two workers racing on one cold cache file both get the trace."""
        cache_dir = str(tmp_path / "cold")
        args = [("INT_xli", INSTR, cache_dir)] * 2
        with multiprocessing.Pool(2) as pool:
            results = pool.map(_get_trace_worker, args)
        assert results[0] == results[1]
        assert results[0][0] > 0
        cached = list(Path(cache_dir).glob("INT_xli_*.npz"))
        assert len(cached) == 1
        # No torn tmp files left behind.
        assert not list(Path(cache_dir).glob("*.tmp.*"))

    def test_cache_file_loadable_and_equal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "c2"))
        first = suites.get_trace("MM_aud", INSTR)
        second = suites.get_trace("MM_aud", INSTR)  # from cache
        assert first.kind == second.kind
        assert first.addr == second.addr
        cols_a = first.predictor_columns()
        cols_b = second.predictor_columns()
        assert cols_a.lists() == cols_b.lists()

    def test_stream_only_load_matches_full(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "c3"))
        trace = suites.get_trace("GAM_duk", INSTR)
        stream = suites.get_predictor_stream("GAM_duk", INSTR)
        full = trace.predictor_columns()
        assert stream.lists() == full.lists()
        assert stream.loads == full.loads
