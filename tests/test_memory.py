"""Tests for the memory model and heap allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.memory import AddressSpace, HeapAllocator, Memory


class TestMemory:
    def test_unwritten_reads_zero(self):
        assert Memory().load(0x1000) == 0

    def test_store_load(self):
        m = Memory()
        m.store(0x1000, 42)
        assert m.load(0x1000) == 42

    def test_counters(self):
        m = Memory()
        m.store(4, 1)
        m.load(4)
        m.load(8)
        assert m.writes == 1 and m.reads == 2

    def test_poke_peek_dont_count(self):
        m = Memory()
        m.poke(4, 7)
        assert m.peek(4) == 7
        assert m.reads == 0 and m.writes == 0

    def test_poke_words(self):
        m = Memory()
        m.poke_words(100, [1, 2, 3])
        assert [m.peek(100 + 4 * i) for i in range(3)] == [1, 2, 3]

    def test_negative_address_rejected(self):
        m = Memory()
        with pytest.raises(ValueError):
            m.load(-4)
        with pytest.raises(ValueError):
            m.store(-4, 0)

    def test_footprint(self):
        m = Memory()
        m.poke(0, 1)
        m.poke(4, 2)
        m.poke(0, 3)
        assert m.footprint() == 2

    @given(st.dictionaries(st.integers(0, 10000), st.integers(), max_size=50))
    def test_acts_like_dict(self, writes):
        m = Memory()
        for addr, value in writes.items():
            m.store(addr, value)
        for addr, value in writes.items():
            assert m.load(addr) == value


class TestHeapAllocator:
    def test_sequential_is_contiguous(self):
        a = HeapAllocator(policy="sequential", align=8)
        first = a.alloc(16)
        second = a.alloc(16)
        assert second == first + 16

    def test_shuffled_decorrelates_order(self):
        a = HeapAllocator(policy="shuffled", seed=3)
        addrs = [a.alloc(16) for _ in range(32)]
        deltas = {addrs[i + 1] - addrs[i] for i in range(len(addrs) - 1)}
        assert len(deltas) > 1  # not a pure stride

    def test_shuffled_blocks_disjoint(self):
        a = HeapAllocator(policy="shuffled", seed=7)
        spans = sorted((a.alloc(24), 24) for _ in range(100))
        for (lo, size), (nxt, _) in zip(spans, spans[1:]):
            assert lo + size <= nxt

    def test_alignment(self):
        a = HeapAllocator(policy="shuffled", align=16)
        for _ in range(20):
            assert a.alloc(10) % 16 == 0

    def test_deterministic_for_seed(self):
        seq1 = [HeapAllocator(seed=5).alloc(16) for _ in range(1)]
        a1 = HeapAllocator(seed=5)
        a2 = HeapAllocator(seed=5)
        assert [a1.alloc(16) for _ in range(50)] == [
            a2.alloc(16) for _ in range(50)
        ]
        del seq1

    def test_different_seeds_differ(self):
        a1 = HeapAllocator(seed=1)
        a2 = HeapAllocator(seed=2)
        assert [a1.alloc(16) for _ in range(20)] != [
            a2.alloc(16) for _ in range(20)
        ]

    def test_arrays_always_contiguous(self):
        a = HeapAllocator(policy="shuffled")
        base = a.alloc_array(100, 4)
        assert base >= AddressSpace.HEAP_BASE

    def test_spread_stays_in_heap(self):
        a = HeapAllocator(policy="spread", seed=9)
        for _ in range(50):
            addr = a.alloc(32)
            assert AddressSpace.HEAP_BASE <= addr < AddressSpace.HEAP_LIMIT

    def test_exhaustion(self):
        a = HeapAllocator(
            policy="sequential", base=0x1000, limit=0x1100, align=8,
        )
        with pytest.raises(MemoryError):
            for _ in range(100):
                a.alloc(64)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HeapAllocator(policy="bogus")
        with pytest.raises(ValueError):
            HeapAllocator(align=3)
        with pytest.raises(ValueError):
            HeapAllocator().alloc(0)
        with pytest.raises(ValueError):
            HeapAllocator().alloc_array(0, 4)

    def test_bookkeeping(self):
        a = HeapAllocator(align=8)
        a.alloc(10)
        a.alloc_array(4, 4)
        assert len(a.allocations) == 2
        assert a.bytes_in_use() == 16 + 16  # both rounded to align
