"""Tests for the ``repro.lint`` simulator-correctness linter.

Three layers:

* **Fixture pairs** — for every rule, a ``bad`` fixture must fire and a
  ``good`` fixture must stay silent (each linted with *only* that rule,
  under a virtual path that puts scoped rules in scope).
* **Self-checks with teeth** — the historical ``PipelinedPredictor.reset()``
  bug is re-introduced on a source string and R001 must report it at the
  right line; the real source tree must lint clean.
* **Plumbing** — suppressions, reporters, CLI exit codes, and a
  skipif-gated mypy smoke test for the typed packages.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    all_rules,
    get_rules,
    lint_paths,
    lint_source,
)
from repro.lint.cli import main as lint_main
from repro.lint.reporters import render_json, render_text, summary_dict

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"

#: rule id -> virtual path the fixture is linted under.  R001's
#: missing-reset variant and all of R003 only apply inside the simulator
#: packages, so those fixtures pretend to live there.
FIXTURE_PATHS = {
    "R001": "src/repro/predictors/fixture.py",
    "R002": "tests/lint_fixtures/fixture.py",
    "R003": "src/repro/predictors/fixture.py",
    "R004": "src/repro/eval/fixture.py",
    "R005": "src/repro/eval/fixture.py",
    "R006": "src/repro/predictors/fixture.py",
    "R007": "src/repro/serve/fixture.py",
    "R008": "src/repro/predictors/fixture.py",
    "R009": "src/repro/kernels/fixture.py",
    # The exit-code checks only run on modules named like a CLI.
    "R010": "src/repro/ingest/fixture_cli.py",
}


def _lint_fixture(rule_id, kind):
    path = FIXTURES / f"{rule_id.lower()}_{kind}.py"
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source, relpath=FIXTURE_PATHS[rule_id], rules=[rule_id]
    )


class TestFixturePairs:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_PATHS))
    def test_bad_fixture_fires(self, rule_id):
        findings = _lint_fixture(rule_id, "bad")
        assert findings, f"{rule_id} produced no findings on its bad fixture"
        assert all(f.rule == rule_id for f in findings)
        assert not any(f.suppressed for f in findings)

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_PATHS))
    def test_good_fixture_is_silent(self, rule_id):
        assert _lint_fixture(rule_id, "good") == []

    def test_r001_reports_both_bug_shapes(self):
        findings = _lint_fixture("R001", "bad")
        symbols = {f.symbol for f in findings}
        assert "LeakyHistoryPredictor.reset" in symbols
        assert "TrainedNoResetPredictor" in symbols
        by_symbol = {f.symbol: f for f in findings}
        assert "pending" in by_symbol["LeakyHistoryPredictor.reset"].message

    def test_r002_flags_every_class(self):
        messages = " ".join(f.message for f in _lint_fixture("R002", "bad"))
        for marker in (
            "random.randrange",
            "wall-clock",
            "unordered set",
            "popitem",
            "environment read",
        ):
            assert marker in messages

    def test_r004_flags_lambda_and_local_names(self):
        messages = [f.message for f in _lint_fixture("R004", "bad")]
        assert any("lambda" in m for m in messages)
        assert any("'local_factory'" in m for m in messages)
        assert any("'scale'" in m for m in messages)

    def test_r005_reports_the_lacking_function(self):
        findings = _lint_fixture("R005", "bad")
        assert len(findings) == 1
        assert findings[0].symbol == "run_on_columns"
        assert "on_branch" in findings[0].message

    def test_r006_reports_each_contract_slice(self):
        findings = _lint_fixture("R006", "bad")
        by_symbol = {f.symbol: f.message for f in findings}
        assert "update_batch" in by_symbol["PlanWithoutCommit"]
        assert "predict_batch" in by_symbol["CommitWithoutPlan"]
        assert "supports_batch" in by_symbol["UndeclaredKernels"]

    def test_r007_reports_race_and_process_shapes(self):
        findings = _lint_fixture("R007", "bad")
        messages = " ".join(f.message for f in findings)
        assert "self.active" in messages
        assert "worker-process" in messages
        race = next(f for f in findings if "self.active" in f.message)
        # The def->use trace walks read -> suspension(s) -> write.
        notes = " ".join(step.note for step in race.trace)
        assert "suspension point" in notes

    def test_r007_obs_bad_fixture_fires_in_obs_scope(self):
        # The admin-endpoint shape: shared scrape stats read, response
        # streamed (suspension), stats committed from the stale read.
        source = (FIXTURES / "r007_obs_bad.py").read_text(encoding="utf-8")
        findings = lint_source(
            source, relpath="src/repro/obs/fixture.py", rules=["R007"]
        )
        assert findings, "R007 missed the admin check-then-act shape"
        messages = " ".join(f.message for f in findings)
        assert "self.scrapes" in messages

    def test_r007_obs_good_fixture_is_silent(self):
        source = (FIXTURES / "r007_obs_good.py").read_text(encoding="utf-8")
        assert lint_source(
            source, relpath="src/repro/obs/fixture.py", rules=["R007"]
        ) == []

    def test_r007_out_of_scope_outside_serve_and_obs(self):
        # The same racy source under a non-scoped package stays silent:
        # R007 is scoped to the packages whose handlers share state.
        source = (FIXTURES / "r007_obs_bad.py").read_text(encoding="utf-8")
        assert lint_source(
            source, relpath="src/repro/predictors/fixture.py",
            rules=["R007"],
        ) == []

    def test_r002_clock_reads_allowlisted_in_obs_package(self):
        # The observability plane measures wall time for a living; the
        # same read outside obs/ still fires.
        source = "import time\n\ndef stamp():\n    return time.perf_counter()\n"
        assert lint_source(
            source, relpath="src/repro/obs/fixture.py", rules=["R002"]
        ) == []
        flagged = lint_source(
            source, relpath="src/repro/eval/fixture.py", rules=["R002"]
        )
        assert any("wall-clock" in f.message for f in flagged)

    def test_r008_follows_taint_through_rename_and_call(self):
        findings = _lint_fixture("R008", "bad")
        messages = [f.message for f in findings]
        assert any("cursor + step" in m for m in messages)
        assert any("'mixed'" in m for m in messages)
        # The flagged statements mention no address-like name: R003's
        # syntactic filter cannot see them, only the dataflow can.
        assert all(f.trace for f in findings)

    def test_r009_reports_shift_loop_and_width_overflow(self):
        findings = _lint_fixture("R009", "bad")
        messages = " ".join(f.message for f in findings)
        assert "never terminates" in messages
        assert "80 value bits" in messages
        loop = next(f for f in findings if "right-shift loop" in f.message)
        # The trace walks the unbounded definition down to the shift.
        assert any(
            "without a non-negative bound" in step.note for step in loop.trace
        )
        assert "'>>='" in loop.trace[-1].note

    def test_r010_reports_each_contract_erosion(self):
        findings = _lint_fixture("R010", "bad")
        messages = " ".join(f.message for f in findings)
        assert "fully dynamic" in messages
        assert "not pinned" in messages
        assert "literal exit code 0/1/2" in messages
        assert "exit code 2" in messages  # the escape check


#: The PR 3 bug, reconstructed: reset() forgets the embedded branch
#: predictor (charged through its .update() call) and the flush counter
#: (charged through the augmented assignment).
BUGGY_PIPELINE = '''\
class PipelinedPredictor:
    def __init__(self, inner, config):
        self.inner = inner
        self.config = config
        self.branch_predictor = BranchPredictor(config.branch_bits)
        self.flushes = 0
        self.queue = []

    def on_branch(self, ip, taken):
        self.branch_predictor.update(ip, taken)
        if not taken:
            self.flushes += 1
            self.queue.clear()

    def update(self, ip, addr):
        self.inner.update(ip, addr)
        self.queue.append((ip, addr))

    def reset(self):
        self.inner.reset()
        self.queue = []
'''

FIXED_PIPELINE = BUGGY_PIPELINE + (
    "        self.branch_predictor.reset()\n"
    "        self.flushes = 0\n"
)


class TestHistoricalBugSelfCheck:
    def test_r001_catches_the_pr3_reset_bug(self):
        findings = lint_source(
            BUGGY_PIPELINE,
            relpath="src/repro/pipeline/delayed.py",
            rules=["R001"],
        )
        assert len(findings) == 1
        finding = findings[0]
        expected_line = (
            BUGGY_PIPELINE.splitlines().index("    def reset(self):") + 1
        )
        assert finding.line == expected_line
        assert finding.symbol == "PipelinedPredictor.reset"
        assert "branch_predictor" in finding.message
        assert "flushes" in finding.message

    def test_fixed_reset_is_clean(self):
        findings = lint_source(
            FIXED_PIPELINE,
            relpath="src/repro/pipeline/delayed.py",
            rules=["R001"],
        )
        assert findings == []

    def test_source_tree_lints_clean(self):
        """The gate CI enforces: zero unsuppressed findings on src/repro."""
        result = lint_paths([SRC_REPRO], root=REPO_ROOT)
        assert result.files_checked > 50
        assert result.errors == []
        assert result.active == [], "\n".join(
            f.format() for f in result.active
        )

    def test_source_tree_suppressions_are_explained(self):
        """Every in-tree suppression must sit on a line whose neighbourhood
        carries an explanatory comment (the documented policy)."""
        result = lint_paths([SRC_REPRO], root=REPO_ROOT)
        assert result.suppressed, "expected the documented suppressions"
        for finding in result.suppressed:
            text = (REPO_ROOT / finding.path).read_text(encoding="utf-8")
            lines = text.splitlines()
            window = lines[max(0, finding.line - 4): finding.line]
            assert any("#" in line for line in window), finding.format()


class TestSuppressions:
    SOURCE = (
        "import random\n"
        "def roll():\n"
        "    return random.random()  # repro-lint: disable=R002\n"
    )

    def test_suppressed_finding_is_marked_not_dropped(self):
        findings = lint_source(self.SOURCE, rules=["R002"])
        assert len(findings) == 1
        assert findings[0].suppressed is True

    def test_suppression_is_rule_specific(self):
        wrong_rule = self.SOURCE.replace("R002", "R001")
        findings = lint_source(wrong_rule, rules=["R002"])
        assert findings[0].suppressed is False

    def test_suppression_is_line_specific(self):
        moved = (
            "import random\n"
            "# repro-lint: disable=R002\n"
            "def roll():\n"
            "    return random.random()\n"
        )
        findings = lint_source(moved, rules=["R002"])
        assert findings[0].suppressed is False


class TestFrameworkPlumbing:
    def test_all_ten_rules_registered(self):
        assert sorted(all_rules()) == [
            "R001", "R002", "R003", "R004", "R005",
            "R006", "R007", "R008", "R009", "R010",
        ]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            get_rules(["R999"])

    def test_json_report_shape(self):
        result = lint_paths([FIXTURES / "r002_bad.py"], root=REPO_ROOT)
        payload = json.loads(render_json(result))
        assert set(payload) == {"summary", "findings", "rules"}
        assert payload["summary"]["files_checked"] == 1
        assert payload["summary"]["ok"] is False
        assert payload["summary"]["by_rule"].get("R002")
        first = payload["findings"][0]
        assert set(first) == {
            "rule", "path", "line", "message", "symbol", "suppressed",
        }
        assert set(payload["rules"]) == set(all_rules())

    def test_text_report_mentions_summary(self):
        result = lint_paths([FIXTURES / "r002_good.py"], root=REPO_ROOT)
        text = render_text(result)
        assert "1 file(s) checked" in text
        assert summary_dict(result)["ok"] is True

    def test_finding_format_includes_location(self):
        finding = Finding(
            rule="R001", path="a/b.py", line=7, message="msg", symbol="C.reset"
        )
        assert finding.format() == "a/b.py:7: R001 [C.reset] msg"


class TestCli:
    def test_clean_path_exits_zero(self, capsys):
        assert lint_main([str(FIXTURES / "r002_good.py")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert lint_main([str(FIXTURES / "r001_bad.py")]) == 1
        out = capsys.readouterr().out
        assert "R001" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--rules", "R999", str(FIXTURES)]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rules():
            assert rule_id in out

    def test_json_format(self, capsys):
        assert lint_main(
            ["--format", "json", str(FIXTURES / "r002_good.py")]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is True


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy is not installed (dev extra); CI runs it explicitly",
)
def test_mypy_strict_on_typed_packages():
    """`mypy src/repro/common` must pass under the pyproject config."""
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro/common"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
