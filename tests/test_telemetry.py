"""Instrumentation layer: probes, manifests, schema, profiler, stats.

The load-bearing property is R005-style parity: an instrumented predictor
must report byte-identical attribution counters whether it is driven by
``run_on_stream``, ``run_on_columns``, or the engine (serial or pooled).
"""

import json
import random

import pytest

from repro.eval.engine import FACTORIES, Job, execute_job, run_jobs
from repro.eval.metrics import AttributionCounters, PredictorMetrics
from repro.eval.runner import run_predictor
from repro.pipeline.delayed import PipelinedPredictor
from repro.telemetry import (
    ATTRIBUTION_FIELDS,
    AttributionProbe,
    instrument_predictor,
)
from repro.telemetry import manifest as run_manifest
from repro.telemetry import profiler
from repro.telemetry.schema import load_schema, validate, validate_manifest
from repro.trace.event import KIND_BRANCH, KIND_CALL, KIND_LOAD, KIND_RET
from repro.trace.trace import Trace

TRACE = "INT_xli"
INSTR = 8000


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.delenv("REPRO_TELEMETRY_PROFILE", raising=False)


def _mixed_trace(events=3000, seed=7):
    """Loads (strided + correlated + noisy), branches, calls, returns."""
    rng = random.Random(seed)
    trace = Trace("mixed", meta={"suite": "TEST"})
    stride_addr = 0x10000
    ring = [0x20000 + 64 * i for i in range(5)]
    depth = 0
    for i in range(events):
        roll = rng.random()
        if roll < 0.45:
            stride_addr += 16
            trace.append(KIND_LOAD, 0x400, addr=stride_addr, offset=4)
        elif roll < 0.65:
            trace.append(KIND_LOAD, 0x404, addr=ring[i % len(ring)], offset=8)
        elif roll < 0.75:
            trace.append(
                KIND_LOAD, 0x408, addr=rng.randrange(2**28) * 4, offset=12
            )
        elif roll < 0.90:
            trace.append(KIND_BRANCH, 0x500 + 4 * (i % 7),
                         taken=int(rng.random() < 0.6))
        elif roll < 0.95 or depth == 0:
            trace.append(KIND_CALL, 0x600, addr=0x7F00 + depth)
            depth += 1
        else:
            trace.append(KIND_RET, 0x604, addr=0x7F00 + depth)
            depth -= 1
    return trace


def _variants():
    yield "stride", lambda: FACTORIES["stride"]()
    yield "cap", lambda: FACTORIES["cap"]()
    yield "hybrid", lambda: FACTORIES["hybrid"]()
    yield "hybrid_gap4", lambda: PipelinedPredictor(FACTORIES["hybrid"](), 4)


class TestAttributionProbe:
    def test_fields_pin_counters_dataclass(self):
        # The probe's field list and AttributionCounters' extra fields are
        # maintained by hand in two modules; this is the drift alarm.
        assert tuple(AttributionCounters().attribution()) == ATTRIBUTION_FIELDS

    def test_events_increment_their_field(self):
        probe = AttributionProbe()
        probe.lb_miss()
        probe.lt_tag_mismatch()
        probe.selector_choice("cap")
        probe.selector_choice("stride")
        probe.selector_choice("stride")
        counts = probe.as_dict()
        assert counts["lb_misses"] == 1
        assert counts["lt_tag_mismatches"] == 1
        assert counts["selector_cap"] == 1
        assert counts["selector_stride"] == 2
        assert probe.total_events() == 5

    def test_merge_sums_fields(self):
        a, b = AttributionProbe(), AttributionProbe()
        a.pf_rejection()
        b.pf_rejection()
        b.confidence_veto()
        a.merge(b)
        assert a.pf_rejections == 2
        assert a.confidence_vetoes == 1

    def test_absorb_probe_matches_by_name(self):
        probe = AttributionProbe()
        probe.catchup_fired()
        counters = AttributionCounters()
        counters.absorb_probe(probe)
        counters.absorb_probe(probe)
        assert counters.catchups_fired == 2


class TestInstrumentWiring:
    def test_cap_tree_shares_one_probe(self):
        predictor = FACTORIES["cap"]()
        probe = AttributionProbe()
        instrument_predictor(predictor, probe)
        assert predictor.probe is probe
        assert predictor.component.probe is probe
        assert predictor.component.link_table.probe is probe

    def test_hybrid_tree_shares_one_probe(self):
        predictor = FACTORIES["hybrid"]()
        probe = AttributionProbe()
        instrument_predictor(predictor, probe)
        assert predictor.probe is probe
        assert predictor.stride_logic.probe is probe

    def test_pipelined_wrapper_recurses(self):
        predictor = PipelinedPredictor(FACTORIES["cap"](), 4)
        probe = AttributionProbe()
        instrument_predictor(predictor, probe)
        assert predictor.probe is probe
        assert predictor.inner.probe is probe

    def test_reset_keeps_the_probe_attached(self):
        predictor = FACTORIES["cap"]()
        probe = AttributionProbe()
        instrument_predictor(predictor, probe)
        predictor.reset()
        assert predictor.component.link_table.probe is probe

    def test_uninstrumented_probe_stays_none(self):
        predictor = FACTORIES["hybrid"]()
        run_predictor(predictor, _mixed_trace(500))
        assert predictor.probe is None


class TestCounterParity:
    @pytest.mark.parametrize(
        "name", [name for name, _ in _variants()]
    )
    def test_stream_and_columns_agree(self, name):
        build = dict(_variants())[name]
        trace = _mixed_trace()
        columns = trace.predictor_columns()
        tuples = list(columns.tuples())
        via_columns = run_predictor(build(), columns, instrument=True)
        via_stream = run_predictor(build(), tuples, instrument=True)
        assert via_columns.attribution() == via_stream.attribution()
        assert via_columns.loads == via_stream.loads
        assert via_columns.speculative == via_stream.speculative
        assert any(via_columns.attribution().values())

    def test_engine_serial_vs_pool_identical(self, monkeypatch):
        jobs = [
            Job(trace=TRACE, factory=name, variant=name,
                instructions=INSTR, instrument=True)
            for name in ("stride", "cap", "hybrid")
        ]
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = run_jobs(jobs)
        monkeypatch.setenv("REPRO_JOBS", "2")
        pooled = run_jobs(jobs)
        for left, right in zip(serial, pooled):
            assert isinstance(left.metrics, AttributionCounters)
            assert left.metrics.attribution() == right.metrics.attribution()
            assert left.metrics.loads == right.metrics.loads

    def test_instrument_flag_off_returns_plain_metrics(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        job = Job(trace=TRACE, factory="cap", variant="cap",
                  instructions=INSTR)
        result = execute_job(job)
        assert type(result.metrics) is PredictorMetrics


class TestManifests:
    def test_engine_writes_schema_valid_manifest(self, tmp_path, monkeypatch):
        out = tmp_path / "telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(out))
        monkeypatch.setenv("REPRO_JOBS", "1")
        job = Job(trace=TRACE, factory="hybrid", variant="hybrid",
                  instructions=INSTR, instrument=True)
        run_jobs([job])
        manifests = run_manifest.load_manifests(out)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert validate_manifest(manifest) == []
        assert manifest["schema"] == run_manifest.MANIFEST_SCHEMA_ID
        assert manifest["job"]["trace"] == TRACE
        assert manifest["metrics"]["loads"] > 0
        assert manifest["attribution"]["confidence_vetoes"] >= 0
        assert manifest["run"]["wall_s"] >= 0.0

    def test_same_job_overwrites_not_duplicates(self, tmp_path, monkeypatch):
        out = tmp_path / "telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(out))
        monkeypatch.setenv("REPRO_JOBS", "1")
        job = Job(trace=TRACE, factory="cap", variant="cap",
                  instructions=INSTR)
        run_jobs([job])
        run_jobs([job])
        assert len(list(out.glob("*.json"))) == 1

    def test_disabled_writes_nothing(self, tmp_path, monkeypatch):
        out = tmp_path / "telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(out))
        monkeypatch.setenv("REPRO_JOBS", "1")
        run_jobs([Job(trace=TRACE, factory="cap", variant="cap",
                      instructions=INSTR)])
        assert not out.exists()

    def test_heartbeats_on_stderr(self, tmp_path, monkeypatch, capfd):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "t"))
        monkeypatch.setenv("REPRO_JOBS", "1")
        run_jobs([Job(trace=TRACE, factory="stride", variant="stride",
                      instructions=INSTR)])
        err = capfd.readouterr().err
        assert "[telemetry]" in err
        assert "start kind=predict" in err
        assert "manifest=" in err

    def test_config_hash_is_stable_and_sensitive(self):
        a = Job(trace=TRACE, factory="cap", instructions=INSTR)
        b = Job(trace=TRACE, factory="cap", instructions=INSTR)
        c = Job(trace=TRACE, factory="cap", instructions=INSTR + 1)
        assert run_manifest.config_hash(a) == run_manifest.config_hash(b)
        assert run_manifest.config_hash(a) != run_manifest.config_hash(c)

    def test_trace_id_never_perturbs_manifest_identity(self, tmp_path,
                                                       monkeypatch):
        """The observability trace id rides along on a Job but is
        excluded from the config hash: the same logical run must
        overwrite its manifest whether or not it was traced."""
        out = tmp_path / "telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(out))
        monkeypatch.setenv("REPRO_JOBS", "1")
        plain = Job(trace=TRACE, factory="cap", variant="cap",
                    instructions=INSTR)
        traced = Job(trace=TRACE, factory="cap", variant="cap",
                     instructions=INSTR, trace_id="t1-9")
        run_jobs([plain])
        run_jobs([traced])
        assert len(list(out.glob("*.json"))) == 1


class TestManifestObsSection:
    def test_engine_manifest_carries_obs_and_validates(
        self, tmp_path, monkeypatch
    ):
        out = tmp_path / "telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(out))
        monkeypatch.setenv("REPRO_JOBS", "1")
        job = Job(trace=TRACE, factory="stride", variant="stride",
                  instructions=INSTR, trace_id="t1-2")
        run_jobs([job])
        (manifest,) = run_manifest.load_manifests(out)
        assert validate_manifest(manifest) == []
        obs = manifest["obs"]
        assert obs["trace_id"] == "t1-2"
        assert obs["metrics"]["counters"]["engine.jobs"] >= 1
        assert "engine.job.run_s" in obs["metrics"]["histograms"]

    def test_old_manifest_without_obs_still_validates(
        self, tmp_path, monkeypatch
    ):
        """Manifests written before the obs section existed must keep
        validating — the section is optional, not required."""
        out = tmp_path / "telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(out))
        monkeypatch.setenv("REPRO_JOBS", "1")
        run_jobs([Job(trace=TRACE, factory="stride", variant="stride",
                      instructions=INSTR)])
        (manifest,) = run_manifest.load_manifests(out)
        del manifest["obs"]
        assert validate_manifest(manifest) == []
        # Null is also fine (a writer with observability off).
        manifest["obs"] = None
        assert validate_manifest(manifest) == []

    def test_malformed_obs_section_is_rejected(self, tmp_path,
                                               monkeypatch):
        out = tmp_path / "telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(out))
        monkeypatch.setenv("REPRO_JOBS", "1")
        run_jobs([Job(trace=TRACE, factory="stride", variant="stride",
                      instructions=INSTR)])
        (manifest,) = run_manifest.load_manifests(out)
        manifest["obs"] = {"flight_recorder": None}  # missing trace_id
        assert validate_manifest(manifest)
        manifest["obs"] = {"trace_id": "t", "bogus": 1}
        assert validate_manifest(manifest)

    def test_serve_session_manifest_obs_validates(self):
        from repro.serve.server import session_manifest
        from repro.serve.session import SessionConfig

        config = SessionConfig(factory="stride")
        metrics = PredictorMetrics(name="stride", suite="serve")
        manifest = session_manifest(
            config, metrics, events=10, started_wall=0.0,
            wall_s=0.5, cpu_s=0.4, backend="python",
            trace_id="lg0-3", flight_dir="/tmp/flight",
        )
        assert validate_manifest(manifest) == []
        assert manifest["obs"]["trace_id"] == "lg0-3"
        assert manifest["obs"]["flight_recorder"] == "/tmp/flight"
        untraced = session_manifest(
            config, metrics, events=10, started_wall=0.0,
            wall_s=0.5, cpu_s=0.4, backend="python",
        )
        assert validate_manifest(untraced) == []
        assert untraced["obs"]["trace_id"] is None


class TestStdoutHygiene:
    def test_json_stdout_stays_parseable_under_telemetry(self, tmp_path):
        """``--format json`` output must be machine-readable even with
        telemetry on: heartbeats go to stderr, never stdout."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env.update({
            "PYTHONPATH": str(repo / "src"),
            "REPRO_TELEMETRY": "1",
            "REPRO_TELEMETRY_DIR": str(tmp_path / "t"),
            "REPRO_JOBS": "2",
            "REPRO_TRACE_CACHE": str(tmp_path / "cache"),
        })
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "breakdown",
             "--traces", TRACE, "--instructions", "2000",
             "--format", "json"],
            cwd=repo, env=env, capture_output=True, text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)  # whole stream, not a prefix
        assert "per_trace" in payload
        assert "[telemetry]" in proc.stderr
        assert "[telemetry]" not in proc.stdout


class TestSchemaValidator:
    def test_schema_file_loads(self):
        schema = load_schema()
        assert schema["required"][0] == "schema"

    def test_reports_type_and_required_violations(self):
        schema = {
            "type": "object",
            "required": ["n"],
            "additionalProperties": False,
            "properties": {"n": {"type": "integer", "minimum": 0}},
        }
        assert validate({"n": 3}, schema) == []
        assert validate({"n": -1}, schema)
        assert validate({"n": "x"}, schema)
        assert validate({}, schema)
        assert validate({"n": 1, "extra": 1}, schema)

    def test_enum_and_nullable_unions(self):
        schema = {
            "type": "object",
            "properties": {
                "kind": {"enum": ["predict", "timing"]},
                "gap": {"type": ["integer", "null"]},
            },
        }
        assert validate({"kind": "predict", "gap": None}, schema) == []
        assert validate({"kind": "bogus"}, schema)
        assert validate({"gap": 1.5}, schema)

    def test_unknown_keyword_raises(self):
        with pytest.raises(ValueError):
            validate({}, {"type": "object", "patternProperties": {}})


class TestProfiler:
    def test_disabled_by_default(self):
        assert profiler.maybe_start() is None

    def test_profile_collects_samples(self, monkeypatch):
        if not profiler.available():
            pytest.skip("SIGPROF/setitimer unavailable")
        monkeypatch.setenv("REPRO_TELEMETRY_PROFILE", "1")
        prof = profiler.maybe_start(interval=0.001)
        assert prof is not None
        deadline = 200_000
        total = 0
        for i in range(deadline):
            total += i * i
        report = prof.stop()
        assert report["interval_ms"] == pytest.approx(1.0)
        assert report["samples"] >= 0
        for site in report["sites"]:
            assert isinstance(site["site"], str)
            assert site["count"] >= 1


class TestStatsReporting:
    def _breakdown(self, monkeypatch):
        from repro.telemetry import stats

        monkeypatch.setenv("REPRO_JOBS", "1")
        return stats.collect_breakdown(
            traces=[TRACE], instructions=INSTR,
        )

    def test_breakdown_text_json_csv(self, monkeypatch):
        result = self._breakdown(monkeypatch)
        text = result.render_text()
        assert "Misprediction-cause breakdown" in text
        for cause in ATTRIBUTION_FIELDS:
            assert cause in text
        payload = json.loads(result.to_json())
        assert set(payload["totals"]) == {"stride", "cap", "hybrid"}
        assert payload["totals"]["cap"]["attribution"]["lb_misses"] >= 1
        csv_text = result.to_csv()
        lines = csv_text.strip().splitlines()
        # header + (per-trace + ALL) per variant
        assert len(lines) == 1 + 2 * 3
        assert lines[0].startswith("variant,trace,suite,loads")

    def test_breakdown_totals_match_engine(self, monkeypatch):
        result = self._breakdown(monkeypatch)
        job = Job(trace=TRACE, factory="cap", variant="cap",
                  instructions=INSTR, instrument=True)
        direct = execute_job(job)
        assert (
            result.totals["cap"].attribution()
            == direct.metrics.attribution()
        )

    def test_summarize_and_validate_directory(self, tmp_path, monkeypatch):
        from repro.telemetry import stats

        out = tmp_path / "telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(out))
        monkeypatch.setenv("REPRO_JOBS", "1")
        run_jobs([Job(trace=TRACE, factory="cap", variant="cap",
                      instructions=INSTR, instrument=True)])
        assert stats.validate_directory(out) == []
        table = stats.summarize_manifests(out)
        assert "cap" in table and TRACE in table
        bad = json.loads((next(out.glob("*.json"))).read_text())
        del bad["config_hash"]
        (out / "broken.json").write_text(json.dumps(bad))
        failures = stats.validate_directory(out)
        assert len(failures) == 1
        assert "config_hash" in " ".join(failures[0][1])


class TestManifestDiff:
    @staticmethod
    def _manifest(variant, wall, accuracy, rate, config_hash="h1"):
        return {
            "schema": run_manifest.MANIFEST_SCHEMA_ID,
            "config_hash": config_hash,
            "job": {"variant": variant, "trace": "T", "kind": "predict"},
            "run": {"started_at": "x", "wall_s": wall, "cpu_s": wall,
                    "pid": 1},
            "metrics": {"accuracy": accuracy, "prediction_rate": rate},
        }

    def _write(self, directory, manifests):
        directory.mkdir(parents=True, exist_ok=True)
        for index, manifest in enumerate(manifests):
            (directory / f"m{index}.json").write_text(json.dumps(manifest))

    def test_clean_when_within_tolerance(self, tmp_path):
        from repro.telemetry.stats import diff_manifests

        self._write(tmp_path / "a", [self._manifest("cap", 1.0, 0.9, 0.5)])
        self._write(tmp_path / "b", [self._manifest("cap", 1.1, 0.9, 0.5)])
        diff = diff_manifests(tmp_path / "a", tmp_path / "b")
        assert diff.clean
        assert diff.rows[0]["flags"] == []

    def test_flags_perf_accuracy_and_rate(self, tmp_path):
        from repro.telemetry.stats import diff_manifests

        self._write(tmp_path / "a", [self._manifest("cap", 1.0, 0.90, 0.50)])
        self._write(tmp_path / "b", [self._manifest("cap", 2.0, 0.80, 0.40)])
        diff = diff_manifests(tmp_path / "a", tmp_path / "b")
        assert not diff.clean
        assert diff.rows[0]["flags"] == ["perf", "accuracy", "rate"]
        assert len(diff.regressions) == 3
        assert "wall" in diff.render()

    def test_config_change_is_informational(self, tmp_path):
        from repro.telemetry.stats import diff_manifests

        self._write(tmp_path / "a", [self._manifest("cap", 1.0, 0.9, 0.5)])
        self._write(
            tmp_path / "b",
            [self._manifest("cap", 1.0, 0.9, 0.5, config_hash="h2")],
        )
        diff = diff_manifests(tmp_path / "a", tmp_path / "b")
        assert diff.clean
        assert diff.rows[0]["flags"] == ["config"]

    def test_unmatched_runs_listed(self, tmp_path):
        from repro.telemetry.stats import diff_manifests

        self._write(tmp_path / "a", [self._manifest("cap", 1.0, 0.9, 0.5)])
        self._write(tmp_path / "b", [self._manifest("str", 1.0, 0.9, 0.5)])
        diff = diff_manifests(tmp_path / "a", tmp_path / "b")
        assert diff.only_baseline == ["cap/T"]
        assert diff.only_candidate == ["str/T"]
