"""Replay the checked-in regression traces and prove they have teeth.

Every JSON file under ``tests/regressions/`` is a minimal trace tied to a
known bug class.  Two directions are asserted for each:

* the trace replays **clean** through the three-way differential check —
  the bug it documents is absent from the production code; and
* the trace still **catches** the corresponding mutant oracle from
  :mod:`repro.verify.mutants` — so the guard is not vacuous.
"""

import pytest

from repro.verify.differential import VARIANTS
from repro.verify.mutants import MUTANTS, find_regression_trace, mutant_caught
from repro.verify.regressions import (
    RegressionCase,
    default_regression_dir,
    load_cases,
    save_case,
)

CASES = {case.name: case for case in load_cases()}


class TestCorpus:
    def test_directory_is_populated(self):
        assert default_regression_dir().is_dir()
        assert len(CASES) >= 3

    def test_names_match_files(self):
        for case in CASES.values():
            assert case.path is not None
            assert case.path.stem == case.name

    def test_variants_are_registered(self):
        for case in CASES.values():
            assert case.variant in VARIANTS, case.name

    def test_every_mutant_has_a_guard_trace(self):
        assert set(MUTANTS) <= set(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_replays_clean(name):
    divergence = CASES[name].replay()
    assert divergence is None, divergence and divergence.format()


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_trace_still_catches_its_mutant(name):
    assert mutant_caught(name, CASES[name].events), (
        f"regression trace {name!r} no longer distinguishes its mutant -"
        " it has lost its teeth"
    )


class TestMining:
    def test_find_regression_trace_for_seeded_mutant(self):
        # The CFI mutant ships a hand-crafted seed trace, so mining it is
        # deterministic and cheap; the result must be clean + catching.
        trace = find_regression_trace("cfi-records-unspeculated", attempts=1)
        assert trace is not None
        assert mutant_caught("cfi-records-unspeculated", trace)
        from repro.verify.differential import verify_events

        assert verify_events("stride", trace) is None


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        case = RegressionCase(
            name="round-trip",
            variant="cap",
            events=[[1, 0x4000, 0x100, 8], [0, 0x5000, 1, 0]],
            note="format check",
        )
        path = save_case(case, tmp_path)
        assert path.name == "round-trip.json"
        loaded = load_cases(tmp_path)
        assert len(loaded) == 1
        assert loaded[0].name == case.name
        assert loaded[0].variant == case.variant
        assert loaded[0].events == case.events
        assert loaded[0].note == case.note

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_cases(tmp_path / "nope") == []
