"""Tests for the shift(m)-xor history function (paper Section 3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import mask
from repro.predictors.history import HistoryFunction, shift_for_length


class TestShiftForLength:
    def test_exact_division(self):
        assert shift_for_length(16, 4) == 4
        assert shift_for_length(20, 4) == 5

    def test_rounds_up(self):
        assert shift_for_length(20, 3) == 7

    def test_length_one_displaces_everything(self):
        assert shift_for_length(16, 1) == 16

    def test_long_lengths_clamp_to_one(self):
        assert shift_for_length(12, 12) == 1
        assert shift_for_length(12, 100) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            shift_for_length(0, 4)
        with pytest.raises(ValueError):
            shift_for_length(16, 0)


class TestHistoryFunction:
    def test_result_fits_width(self):
        fn = HistoryFunction(width=16, length=4)
        h = 0
        for addr in range(0, 4000, 52):
            h = fn.update(h, addr)
            assert 0 <= h <= mask(16)

    def test_drops_low_two_bits(self):
        fn = HistoryFunction(width=16, length=4)
        # Addresses differing only in bits 0-1 give the same history.
        assert fn.update(0, 0x1000) == fn.update(0, 0x1003)

    def test_distinguishes_aligned_addresses(self):
        fn = HistoryFunction(width=16, length=4)
        assert fn.update(0, 0x1000) != fn.update(0, 0x1004)

    def test_ages_out_after_length_updates(self):
        """An address stops influencing the history after `length` updates."""
        fn = HistoryFunction(width=16, length=4)
        tail = [0x2000, 0x3000, 0x4000, 0x5000]
        h1 = fn.fold_sequence([0xAAAA000] + tail)
        h2 = fn.fold_sequence([0xBBBB000] + tail)
        assert h1 == h2

    def test_recent_addresses_do_influence(self):
        # At age 3 (of length 4, shift 4) an address still contributes its
        # low hashed bits, so values differing there must be distinguished.
        fn = HistoryFunction(width=16, length=4)
        tail = [0x2000, 0x3000, 0x4000]
        h1 = fn.fold_sequence([0x9004] + tail)
        h2 = fn.fold_sequence([0x9008] + tail)
        assert h1 != h2

    def test_order_matters(self):
        fn = HistoryFunction(width=16, length=4)
        assert fn.fold_sequence([0x1000, 0x2000]) != fn.fold_sequence(
            [0x2000, 0x1000]
        )

    def test_length_one_behaves_like_last_address_context(self):
        fn = HistoryFunction(width=12, length=1)
        h = fn.fold_sequence([0x7000, 0x1230])
        assert h == fn.fold_sequence([0x9999, 0x1230])

    def test_same_sequence_same_history(self):
        """Determinism: the core property context prediction relies on."""
        fn = HistoryFunction(width=20, length=4)
        seq = [0x2000, 0x2040, 0x2010, 0x2030]
        assert fn.fold_sequence(seq * 3) == fn.fold_sequence(seq * 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            HistoryFunction(width=0, length=4)
        with pytest.raises(ValueError):
            HistoryFunction(width=16, length=4, drop_low_bits=-1)

    @given(
        st.integers(min_value=0, max_value=mask(20)),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_update_always_in_range(self, history, addr):
        fn = HistoryFunction(width=20, length=4)
        assert 0 <= fn.update(history, addr) <= mask(20)

    @given(st.lists(st.integers(0, 2**30), min_size=1, max_size=20))
    def test_periodic_sequences_converge(self, seq):
        """After enough repetitions the history at a given phase is stable."""
        fn = HistoryFunction(width=16, length=4)
        h = 0
        snapshots = []
        for rep in range(8):
            for addr in seq:
                h = fn.update(h, addr)
            snapshots.append(h)
        assert snapshots[-1] == snapshots[-2]
