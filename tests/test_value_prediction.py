"""Tests for the load-value predictors (the Section 1 comparison)."""

import pytest

from repro.predictors import (
    LastValuePredictor,
    StrideValuePredictor,
    ValueMetrics,
    ValuePredictorConfig,
    run_value_predictor,
)
from repro.workloads import LinkedListWorkload, trace_workload


class TestLastValuePredictor:
    def test_learns_constant_value(self):
        p = LastValuePredictor()
        metrics = run_value_predictor(p, [(0x100, 7)] * 10)
        assert metrics.correct_predictions == 9
        assert metrics.speculative > 0
        assert metrics.accuracy == 1.0

    def test_changing_values_never_confident(self):
        p = LastValuePredictor()
        metrics = run_value_predictor(p, [(0x100, i) for i in range(50)])
        assert metrics.speculative == 0

    def test_per_ip_isolation(self):
        p = LastValuePredictor()
        pairs = [(0x100, 1), (0x200, 2)] * 10
        metrics = run_value_predictor(p, pairs)
        assert metrics.predictability > 0.8


class TestStrideValuePredictor:
    def test_learns_counter_values(self):
        """A load returning 0,1,2,3,... (a loop counter in memory)."""
        p = StrideValuePredictor()
        metrics = run_value_predictor(p, [(0x100, i) for i in range(50)])
        assert metrics.predictability > 0.9
        assert metrics.accuracy > 0.95

    def test_constant_is_stride_zero(self):
        p = StrideValuePredictor()
        metrics = run_value_predictor(p, [(0x100, 42)] * 20)
        assert metrics.predictability > 0.9

    def test_wraps_32bit(self):
        p = StrideValuePredictor()
        values = [(0x100, (0xFFFF_FFF0 + 8 * i) & 0xFFFFFFFF) for i in range(20)]
        metrics = run_value_predictor(p, values)
        assert metrics.predictability > 0.8


class TestValueMetrics:
    def test_empty(self):
        m = ValueMetrics()
        assert m.prediction_rate == 0.0
        assert m.accuracy == 0.0
        assert m.predictability == 0.0

    def test_add(self):
        a = ValueMetrics(loads=10, speculative=5, correct_speculative=5)
        b = ValueMetrics(loads=10, speculative=0)
        a.add(b)
        assert a.loads == 20
        assert a.prediction_rate == pytest.approx(0.25)


class TestPaperClaim:
    def test_addresses_more_predictable_than_values(self):
        """Section 1: load-value prediction has 'lower predictability'.

        On a pointer chase the *addresses* cycle predictably while the
        *values* (pointers one step ahead plus data) are just as cyclic —
        but on general workloads values include computation results.  Use
        the interpreter-style workload: address prediction must beat value
        prediction clearly.
        """
        from repro.eval.runner import run_predictor
        from repro.predictors import HybridPredictor

        trace = trace_workload(
            LinkedListWorkload(seed=5), max_instructions=30_000,
        )
        addr = run_predictor(HybridPredictor(), trace.predictor_stream())
        value = run_value_predictor(
            StrideValuePredictor(), trace.value_stream(),
        )
        assert addr.prediction_rate > value.prediction_rate

    def test_config_applied(self):
        p = LastValuePredictor(ValuePredictorConfig(confidence_threshold=4))
        metrics = run_value_predictor(p, [(0x100, 7)] * 6)
        assert metrics.speculative == 1  # needs 4 correct first
