"""Tests for the g-share branch predictor and the pipelined (delayed
update) predictor wrapper."""

import pytest

from repro.pipeline.branch import BranchPredictor, BranchPredictorConfig
from repro.pipeline.delayed import PipelinedPredictor
from repro.predictors import StridePredictor
from repro.predictors.base import AddressPredictor, Prediction
from repro.predictors.stride import StrideConfig


class TestBranchPredictorConfig:
    def test_defaults(self):
        config = BranchPredictorConfig()
        assert config.entries == 4096
        assert config.history_bits == 12

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(entries=1000)
        with pytest.raises(ValueError):
            BranchPredictorConfig(entries=0)

    def test_counter_bits_bounds(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(counter_bits=0)
        with pytest.raises(ValueError):
            BranchPredictorConfig(counter_bits=5)
        BranchPredictorConfig(counter_bits=1)  # boundary: legal


class TestBranchPredictor:
    def test_initial_state_is_weakly_taken(self):
        bp = BranchPredictor()
        assert bp.predict(0x1000)

    def test_one_not_taken_flips_a_weak_counter(self):
        bp = BranchPredictor()
        # taken=False keeps the history at 0, so the same counter is read.
        bp.update(0x1000, taken=False)
        assert not bp.predict(0x1000)

    def test_counters_saturate(self):
        bp = BranchPredictor(BranchPredictorConfig(counter_bits=2))
        for _ in range(10):
            bp.update(0x1000, taken=False)
        # One taken outcome must not be enough to flip a saturated counter.
        bp.update(0x1000, taken=True)
        bp.history = 0
        assert not bp.predict(0x1000)

    def test_update_returns_correctness_and_counts(self):
        bp = BranchPredictor()
        assert bp.update(0x1000, taken=True)        # weakly taken: correct
        assert not bp.update(0x1000, taken=False)   # whatever it says now
        assert bp.lookups == 2
        assert bp.mispredictions >= 1

    def test_gshare_learns_alternating_pattern(self):
        bp = BranchPredictor()
        for i in range(400):
            bp.update(0x2000, taken=bool(i % 2))
        correct = sum(
            1 for i in range(400, 600) if bp.update(0x2000, taken=bool(i % 2))
        )
        # The two history patterns index distinct, well-trained counters.
        assert correct == 200

    def test_accuracy_property(self):
        bp = BranchPredictor()
        assert bp.accuracy == 0.0
        for _ in range(10):
            bp.update(0x3000, taken=True)
        assert bp.accuracy == 1.0

    def test_reset(self):
        bp = BranchPredictor()
        for i in range(50):
            bp.update(0x4000 + 4 * i, taken=bool(i % 3))
        bp.reset()
        assert bp.history == 0
        assert bp.lookups == 0
        assert bp.mispredictions == 0
        assert bp.predict(0x1000)  # back to weakly taken


class RecordingPredictor(AddressPredictor):
    """Inner predictor that records update order for the wrapper tests."""

    def __init__(self):
        super().__init__()
        self.speculative_mode = False
        self.updates = []

    def predict(self, ip, offset):
        return Prediction()

    def update(self, ip, offset, actual, prediction):
        self.updates.append((ip, actual))

    def reset(self):
        super().reset()
        self.updates = []


def _feed(pipelined, ip, actual):
    prediction = pipelined.predict(ip, 0)
    pipelined.update(ip, 0, actual, prediction)


class TestPipelinedPredictor:
    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            PipelinedPredictor(RecordingPredictor(), -1)

    def test_inner_without_speculative_mode_rejected(self):
        class Bare(AddressPredictor):
            def predict(self, ip, offset):
                return Prediction()

            def update(self, ip, offset, actual, prediction):
                pass

        with pytest.raises(TypeError):
            PipelinedPredictor(Bare(), 4)

    def test_speculative_mode_follows_gap(self):
        inner = RecordingPredictor()
        PipelinedPredictor(inner, 4)
        assert inner.speculative_mode
        inner2 = RecordingPredictor()
        PipelinedPredictor(inner2, 0)
        assert not inner2.speculative_mode

    def test_gap_zero_updates_immediately(self):
        inner = RecordingPredictor()
        p = PipelinedPredictor(inner, 0)
        _feed(p, 0x1000, 0xA)
        assert inner.updates == [(0x1000, 0xA)]
        assert p.pending_updates == 0

    def test_updates_apply_gap_loads_late(self):
        inner = RecordingPredictor()
        p = PipelinedPredictor(inner, 2)
        _feed(p, 0x1000, 0xA)
        _feed(p, 0x1004, 0xB)
        assert inner.updates == []
        assert p.pending_updates == 2
        _feed(p, 0x1008, 0xC)
        # The oldest resolution lands once gap later loads are in flight.
        assert inner.updates == [(0x1000, 0xA)]
        assert p.pending_updates == 2

    def test_flush_drains_queue_in_order(self):
        inner = RecordingPredictor()
        p = PipelinedPredictor(inner, 4)
        for i in range(3):
            _feed(p, 0x1000 + 4 * i, 0x10 * i)
        p.flush()
        assert inner.updates == [(0x1000, 0), (0x1004, 0x10), (0x1008, 0x20)]
        assert p.pending_updates == 0

    def test_branch_mispredict_flushes(self):
        inner = RecordingPredictor()
        p = PipelinedPredictor(inner, 4)
        _feed(p, 0x1000, 0xA)
        # The embedded g-share starts weakly taken, so a not-taken branch
        # is a guaranteed misprediction -> pipeline redirect.
        p.on_branch(0x2000, taken=False)
        assert p.flushes == 1
        assert inner.updates == [(0x1000, 0xA)]
        assert p.pending_updates == 0

    def test_correct_branch_does_not_flush(self):
        inner = RecordingPredictor()
        p = PipelinedPredictor(inner, 4)
        _feed(p, 0x1000, 0xA)
        p.on_branch(0x2000, taken=True)
        assert p.flushes == 0
        assert p.pending_updates == 1

    def test_branch_flush_disabled(self):
        inner = RecordingPredictor()
        p = PipelinedPredictor(inner, 4, branch_flush=False)
        _feed(p, 0x1000, 0xA)
        p.on_branch(0x2000, taken=False)
        assert p.flushes == 0
        assert p.pending_updates == 1

    def test_gap_zero_never_consults_branch_predictor(self):
        p = PipelinedPredictor(RecordingPredictor(), 0)
        p.on_branch(0x2000, taken=False)
        assert p.branch_predictor.lookups == 0

    def test_branch_outcome_still_reaches_inner_ghr(self):
        inner = RecordingPredictor()
        p = PipelinedPredictor(inner, 2)
        p.on_branch(0x2000, taken=True)
        p.on_branch(0x2000, taken=False)
        assert inner.ghr == 0b10
        assert p.ghr == 0b10  # routed through to the single source of truth

    def test_name_mentions_gap(self):
        p = PipelinedPredictor(StridePredictor(StrideConfig(entries=64)), 8)
        assert p.name.endswith("@gap8")

    def test_reset_clears_all_wrapper_state(self):
        inner = RecordingPredictor()
        p = PipelinedPredictor(inner, 2)
        _feed(p, 0x1000, 0xA)
        p.on_branch(0x2000, taken=False)   # mispredict: flush + history
        _feed(p, 0x1004, 0xB)
        p.reset()
        assert p.pending_updates == 0
        assert p.flushes == 0
        assert p.branch_predictor.lookups == 0
        assert p.branch_predictor.history == 0
        assert inner.updates == []

    def test_works_with_real_stride_predictor(self):
        p = PipelinedPredictor(StridePredictor(StrideConfig(entries=64)), 2)
        for i in range(32):
            _feed(p, 0x1000, 0x8000 + 64 * i)
        p.flush()
        # After a long strided run the (delayed) tables must have trained.
        prediction = p.predict(0x1000, 0)
        assert prediction.made
