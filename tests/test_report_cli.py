"""Tests for the text report helpers and the CLI."""

import pytest

from repro.eval.cli import EXPERIMENTS, build_parser, main
from repro.eval.report import format_percent, format_speedup, format_table


class TestFormatters:
    def test_percent(self):
        assert format_percent(0.123) == "12.3%"
        assert format_percent(0.98765, digits=2) == "98.77%"
        assert format_percent(0.0) == "0.0%"
        assert format_percent(1.0) == "100.0%"

    def test_speedup(self):
        assert format_speedup(1.21) == "1.210x"


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert lines[3].startswith("a")

    def test_column_alignment(self):
        text = format_table(["k", "v"], [["row", 5], ["longer_row", 123]])
        lines = text.splitlines()
        # All data lines are equally wide (right-aligned numbers).
        assert len(lines[2]) == len(lines[3]) or lines[2].rstrip()

    def test_first_column_left_aligned(self):
        text = format_table(["k", "v"], [["a", 1]])
        data = text.splitlines()[-1]
        assert data.startswith("a")

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_extra_columns_tolerated(self):
        text = format_table(["a"], [["x", "extra"]])
        assert "extra" in text


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "INT_xli" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_stats_tail_once_on_directory(self, capsys, tmp_path):
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder()
        flight.record("s1", "open")
        flight.dump("s1", "timeout", tmp_path)
        assert main(["stats", "tail", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "postmortem" in out and "reason=timeout" in out

    def test_stats_tail_bad_target(self, capsys, tmp_path):
        assert main(
            ["stats", "tail", str(tmp_path / "missing"), "--once"]
        ) == 2

    def test_stats_spans_summarises_export(self, capsys, tmp_path):
        import json

        from repro.obs.tracing import Tracer

        tracer = Tracer()
        tracer.record("serve.batch.exec", start_us=0.0, dur_us=1000.0,
                      trace="t1-1")
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(tracer.export()), encoding="utf-8")
        assert main(["stats", "spans", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve.batch.exec" in out and "1 events" in out

    def test_stats_spans_rejects_invalid_export(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": [{"ph": "X"}]}', encoding="utf-8")
        assert main(["stats", "spans", str(path)]) == 2

    def test_run_small_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        code = main([
            "run", "baselines", "--traces", "INT_xli",
            "--instructions", "5000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "last" in out and "Average" in out

    def test_summarize(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        assert main(["summarize", "INT_xli", "--instructions", "4000"]) == 0
        out = capsys.readouterr().out
        assert "INT_xli" in out and "loads" in out

    def test_every_registered_experiment_is_callable(self):
        for name, (driver, description) in EXPERIMENTS.items():
            assert callable(driver), name
            assert description

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAnalyzeAndSweepCommands:
    def test_analyze_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        code = main([
            "analyze", "INT_cmp", "--instructions", "6000", "--top", "3",
            "--fingerprints", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Load-pattern analysis" in out
        assert "context" in out or "constant" in out

    def test_sweep_list(self, capsys):
        assert main(["sweep", "--list"]) == 0
        assert "cap.history_length" in capsys.readouterr().out

    def test_sweep_command(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        code = main([
            "sweep", "cap.history_length", "1", "4",
            "--traces", "INT_xli", "--instructions", "5000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sensitivity sweep" in out
        assert "best by correct rate" in out

    def test_sweep_usage_error(self, capsys):
        assert main(["sweep"]) == 2

    def test_run_chart_flag(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        code = main([
            "run", "baselines", "--traces", "INT_xli",
            "--instructions", "5000", "--chart",
        ])
        assert code == 0
        assert "|" in capsys.readouterr().out  # bars, not just a table
