"""Tests for the control-based address predictors (Section 3.6)."""

import pytest

from repro.predictors import (
    GShareAddressConfig,
    GShareAddressPredictor,
    HISTORY_BRANCH,
    HISTORY_CALL_PATH,
)


class TestGShareBranchMode:
    def test_learns_control_dependent_addresses(self):
        """One static load alternating with the branch direction."""
        p = GShareAddressPredictor()
        spec = correct = 0
        for rep in range(100):
            for taken, addr in ((True, 0x2000), (False, 0x3000)):
                p.on_branch(0x500, taken)
                pred = p.predict(0x100, 0)
                if pred.speculative:
                    spec += 1
                    correct += pred.address == addr
                p.update(0x100, 0, addr, pred)
        assert spec > 150
        assert correct == spec

    def test_without_history_correlation_it_fails(self):
        """The same alternation looks random to a last-address scheme —
        g-share only wins because of the branch correlation."""
        p = GShareAddressPredictor(
            GShareAddressConfig(history_bits=1)
        )
        spec = correct = 0
        for rep in range(50):
            # No branches fed: both addresses collide on one entry.
            for addr in (0x2000, 0x3000):
                pred = p.predict(0x100, 0)
                if pred.speculative:
                    spec += 1
                    correct += pred.address == addr
                p.update(0x100, 0, addr, pred)
        assert spec == 0  # confidence never builds


class TestCallPathMode:
    def test_call_site_correlation(self):
        """A load whose address depends on the caller."""
        p = GShareAddressPredictor(
            GShareAddressConfig(history_mode=HISTORY_CALL_PATH)
        )
        sites = {0x800: 0x2000, 0x900: 0x3000, 0xA00: 0x4000}
        spec = correct = 0
        for rep in range(150):
            for site, addr in sites.items():
                p.on_call(site)
                pred = p.predict(0x100, 0)
                if pred.speculative:
                    spec += 1
                    correct += pred.address == addr
                p.update(0x100, 0, addr, pred)
                p.on_return(0x104)
        assert spec > 200
        assert correct == spec

    def test_path_depth_bounded(self):
        p = GShareAddressPredictor(
            GShareAddressConfig(history_mode=HISTORY_CALL_PATH)
        )
        for ip in range(0x100, 0x100 + 40, 4):
            p.on_call(ip)
        assert len(p.call_path) == p.PATH_DEPTH


class TestConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            GShareAddressConfig(history_mode="psychic")

    def test_names(self):
        assert GShareAddressPredictor().name == "gshare-addr"
        path = GShareAddressPredictor(
            GShareAddressConfig(history_mode=HISTORY_CALL_PATH)
        )
        assert path.name == "path-addr"

    def test_reset(self):
        p = GShareAddressPredictor()
        pred = p.predict(0x100, 0)
        p.update(0x100, 0, 0x2000, pred)
        p.reset()
        assert not p.predict(0x100, 0).made
