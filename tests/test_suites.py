"""Tests for the 45-trace suite registry and trace caching."""

import pytest

from repro.workloads import suites


class TestRoster:
    def test_suite_counts_match_paper(self):
        expected = {
            "INT": 8, "CAD": 2, "MM": 8, "GAM": 4,
            "JAV": 5, "TPC": 3, "NT": 8, "W95": 7,
        }
        for suite, count in expected.items():
            assert len(suites.trace_names(suite)) == count, suite

    def test_total_is_45(self):
        assert len(suites.trace_names()) == 45

    def test_names_unique(self):
        names = suites.trace_names()
        assert len(set(names)) == len(names)

    def test_names_prefixed_with_suite(self):
        for suite in suites.SUITE_NAMES:
            for name in suites.trace_names(suite):
                assert name.startswith(suite + "_") or name.startswith(suite)

    def test_suite_of(self):
        assert suites.suite_of("INT_xli") == "INT"
        assert suites.suite_of("W95_wwd") == "W95"
        with pytest.raises(KeyError):
            suites.suite_of("XXX_nope")

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError):
            suites.trace_names("VAX")

    def test_build_workload_unknown(self):
        with pytest.raises(KeyError):
            suites.build_workload("nonexistent")

    def test_every_workload_buildable(self):
        for name in suites.trace_names():
            workload = suites.build_workload(name)
            assert workload.name == name
            assert workload.suite == suites.suite_of(name)

    def test_extras_available(self):
        workload = suites.build_workload("X_random")
        assert workload.suite == "MISC"


class TestDeterminism:
    def test_seeds_are_stable(self):
        a = suites.build_workload("INT_xli")
        b = suites.build_workload("INT_xli")
        assert a.seed == b.seed

    def test_distinct_traces_distinct_seeds(self):
        seeds = {suites.build_workload(n).seed for n in suites.trace_names()}
        assert len(seeds) == 45


class TestCaching:
    def test_trace_cached_and_reloaded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        t1 = suites.get_trace("INT_xli", instructions=3000)
        cached = list(tmp_path.glob("INT_xli_3000_v*.npz"))
        assert cached
        t2 = suites.get_trace("INT_xli", instructions=3000)
        assert t1.addr == t2.addr

    def test_cache_bypass(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        suites.get_trace("INT_xli", instructions=2000, use_cache=False)
        assert not list(tmp_path.glob("INT_xli_2000_v*.npz"))

    def test_metadata_carried(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        trace = suites.get_trace("GAM_duk", instructions=2000)
        assert trace.meta["suite"] == "GAM"
        assert trace.name == "GAM_duk"


class TestScaling:
    def test_default_instructions(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SCALE", raising=False)
        assert suites.default_instructions() == suites.DEFAULT_INSTRUCTIONS

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.5")
        assert suites.default_instructions() == suites.DEFAULT_INSTRUCTIONS // 2

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "-1")
        with pytest.raises(ValueError):
            suites.default_instructions()
