"""Tests for the CAP predictor: contexts, base addresses, pollution control."""

import pytest

from repro.predictors import (
    CORRELATION_DELTA,
    CORRELATION_REAL,
    CAPConfig,
    CAPPredictor,
)
from repro.predictors.base import lb_key
from repro.predictors.confidence import CFI_OFF
from repro.predictors.link_table import LinkTableConfig


def drive(predictor, sequence):
    """sequence: iterable of (ip, offset, addr). Returns (spec, correct)."""
    spec = correct = 0
    for ip, offset, addr in sequence:
        p = predictor.predict(ip, offset)
        if p.speculative:
            spec += 1
            if p.address == addr:
                correct += 1
        predictor.update(ip, offset, addr, p)
    return spec, correct


def ring(ip, offset, bases, reps):
    """A repeating RDS-style access sequence for one static load."""
    return [(ip, offset, base + offset) for _ in range(reps) for base in bases]


BASES = [0x2000_0010, 0x2000_0380, 0x2000_0140, 0x2000_0220, 0x2000_02A0]


class TestContextPrediction:
    def test_learns_recurring_sequence(self):
        p = CAPPredictor()
        spec, correct = drive(p, ring(0x100, 8, BASES, 50))
        assert spec / (len(BASES) * 50) > 0.9
        assert correct == spec

    def test_stride_unfriendly_sequence(self):
        """The sequence CAP learns here has no constant stride at all."""
        deltas = {
            (BASES[i + 1] - BASES[i]) for i in range(len(BASES) - 1)
        }
        assert len(deltas) > 1

    def test_no_prediction_before_training(self):
        p = CAPPredictor()
        assert not p.predict(0x100, 8).made

    def test_long_random_sequence_never_confident(self):
        import random

        rng = random.Random(7)
        p = CAPPredictor()
        seq = [(0x100, 0, rng.randrange(2**24) * 4) for _ in range(400)]
        spec, _ = drive(p, seq)
        assert spec < 8


class TestGlobalCorrelation:
    def test_fields_share_links(self):
        """Training one field predicts a *different* field's load at once.

        This is the Section 3.3 property: base addresses make all loads of
        the same RDS share LT entries.
        """
        p = CAPPredictor()
        # Train with the 'next' field (offset 8) until solid.
        drive(p, ring(0x100, 8, BASES, 40))
        # A fresh static load walking the same nodes via offset 4: after
        # one pass to set up its LB history, its predictions come from the
        # links the offset-8 load created.
        drive(p, ring(0x200, 4, BASES, 1))
        spec, correct = drive(p, ring(0x200, 4, BASES, 5))
        assert correct > 0.8 * len(BASES) * 5

    def test_real_mode_does_not_share(self):
        p = CAPPredictor(CAPConfig(correlation=CORRELATION_REAL))
        drive(p, ring(0x100, 8, BASES, 40))
        drive(p, ring(0x200, 4, BASES, 1))
        spec, correct = drive(p, ring(0x200, 4, BASES, 2))
        assert correct == 0  # addresses differ, no shared links

    def test_base_address_roundtrip(self):
        comp = CAPPredictor().component
        for addr in (0x2000_0018, 0x2000_01FF, 0x2000_0000):
            for offset in (0, 4, 8, 0xFC):
                base = comp.base_of(addr, offset)
                assert comp.addr_of(base, offset) == addr

    def test_base_keeps_address_msbs(self):
        comp = CAPPredictor().component
        base = comp.base_of(0x2000_0008, 0xFC)
        assert base >> 8 == 0x2000_0008 >> 8  # MSBs untouched

    def test_offset_truncated_to_8_bits(self):
        """Only the offset LSBs matter (huge displacements share bases)."""
        comp = CAPPredictor().component
        a = comp.base_of(0x2000_0110, 0x1_0010)
        b = comp.base_of(0x2000_0110, 0x0_0010)
        assert a == b


class TestDeltaMode:
    def test_delta_mode_predicts_recurring_deltas(self):
        p = CAPPredictor(CAPConfig(correlation=CORRELATION_DELTA))
        spec, correct = drive(p, ring(0x100, 8, BASES, 60))
        assert correct > 0.8 * spec if spec else True
        assert spec > 0


class TestConfidenceIntegration:
    def test_lt_tags_block_aliased_speculation(self):
        # Tiny LT: two different loads' contexts collide by index; tags
        # must keep the wrong link from being speculated.
        cfg = CAPConfig(
            lt=LinkTableConfig(entries=16, tag_bits=8), cfi_mode=CFI_OFF,
        )
        p = CAPPredictor(cfg)
        drive(p, ring(0x100, 0, [0x2000_0000 + 64 * i for i in range(10)], 30))
        metrics_spec, metrics_correct = drive(
            p, ring(0x100, 0, [0x2000_0000 + 64 * i for i in range(10)], 5)
        )
        # Whatever speculated must be overwhelmingly correct.
        if metrics_spec:
            assert metrics_correct / metrics_spec > 0.9

    def test_confidence_threshold(self):
        p = CAPPredictor(CAPConfig(confidence_threshold=3))
        spec3, _ = drive(p, ring(0x100, 8, BASES, 10))
        p2 = CAPPredictor(CAPConfig(confidence_threshold=1))
        spec1, _ = drive(p2, ring(0x100, 8, BASES, 10))
        assert spec1 > spec3


class TestSpeculativeMode:
    def test_gap_zero_equivalence(self):
        seq = ring(0x100, 8, BASES, 30)
        plain = CAPPredictor()
        r1 = drive(plain, seq)
        spec = CAPPredictor()
        spec.speculative_mode = True
        r2 = drive(spec, seq)
        assert r1 == r2

    def test_spec_history_advances_on_prediction(self):
        p = CAPPredictor()
        p.speculative_mode = True
        for _ in range(30):
            for base in BASES:
                pred = p.predict(0x100, 8)
                p.update(0x100, 8, base + 8, pred)
        state = p.load_buffer.peek(lb_key(0x100))
        h_before = state.spec_history
        p.predict(0x100, 8)  # in-flight, no update yet
        assert state.spec_history != h_before
        assert state.pending == 1


class TestHousekeeping:
    def test_reset(self):
        p = CAPPredictor()
        drive(p, ring(0x100, 8, BASES, 20))
        p.reset()
        assert not p.predict(0x100, 8).made
        assert p.component.link_table.occupancy() == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CAPConfig(correlation="nonsense")
        with pytest.raises(ValueError):
            CAPConfig(history_length=0)
        with pytest.raises(ValueError):
            CAPConfig(offset_bits=0)

    def test_with_lt_helper(self):
        cfg = CAPConfig().with_lt(entries=8192, tag_bits=4)
        assert cfg.lt.entries == 8192
        assert cfg.lt.tag_bits == 4
        assert cfg.history_length == 4  # untouched
