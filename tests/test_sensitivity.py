"""Tests for the parameter-sensitivity sweep driver."""

import pytest

from repro.eval.sensitivity import SWEEPABLE, SweepResult, sweep


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))


class TestSweep:
    def test_cap_threshold_sweep(self):
        result = sweep(
            "cap.confidence_threshold", [1, 3],
            traces=["INT_xli"], instructions=8000,
        )
        assert result.values == [1, 3]
        # A lower threshold speculates strictly more often.
        assert (
            result.metrics[1].prediction_rate
            >= result.metrics[3].prediction_rate
        )

    def test_hybrid_lb_sweep(self):
        result = sweep(
            "hybrid.lb_entries", [64, 4096],
            traces=["NT_cdw"], instructions=8000,
        )
        assert (
            result.metrics[4096].prediction_rate
            >= result.metrics[64].prediction_rate - 0.01
        )

    def test_best(self):
        result = SweepResult(knob="k", values=[1, 2])
        from repro.eval.metrics import PredictorMetrics

        result.metrics[1] = PredictorMetrics(
            loads=10, speculative=5, correct_speculative=5,
        )
        result.metrics[2] = PredictorMetrics(
            loads=10, speculative=9, correct_speculative=9,
        )
        assert result.best() == 2

    def test_render(self):
        result = sweep(
            "stride.confidence_threshold", [2],
            traces=["MM_aud"], instructions=5000,
        )
        text = result.render()
        assert "Sensitivity sweep" in text
        assert "2" in text

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="knob must look like"):
            sweep("history_length", [1], traces=["INT_xli"], instructions=2000)
        with pytest.raises(ValueError, match="unknown predictor kind"):
            sweep("oracle.depth", [1], traces=["INT_xli"], instructions=2000)
        with pytest.raises(ValueError, match="has no field"):
            sweep("cap.nonsense", [1], traces=["INT_xli"], instructions=2000)

    def test_documented_knobs_are_valid(self):
        """Every advertised knob must actually sweep."""
        for knob in SWEEPABLE:
            kind, field_name = knob.split(".", 1)
            from repro.eval.sensitivity import _KINDS

            config_cls, _ = _KINDS[kind]
            assert hasattr(config_cls(), field_name), knob
