"""Tests for the pipelined predictor model (Section 5)."""

import pytest

from repro.pipeline import BranchPredictor, BranchPredictorConfig, PipelinedPredictor
from repro.predictors import CAPPredictor, HybridPredictor, StridePredictor


def drive(predictor, sequence):
    spec = correct = 0
    for ip, offset, addr in sequence:
        p = predictor.predict(ip, offset)
        if p.speculative:
            spec += 1
            if p.address == addr:
                correct += 1
        predictor.update(ip, offset, addr, p)
    return spec, correct


def stride_seq(n, base=0x2000):
    return [(0x100, 0, base + 16 * i) for i in range(n)]


class TestBranchPredictor:
    def test_learns_a_loop(self):
        bp = BranchPredictor()
        # 15 taken, 1 not-taken, repeated: accuracy should become high.
        for _ in range(40):
            for i in range(16):
                bp.update(0x500, i != 15)
        assert bp.accuracy > 0.85

    def test_alternating_with_history(self):
        bp = BranchPredictor()
        for _ in range(300):
            bp.update(0x500, True)
            bp.update(0x500, False)
        # g-share history disambiguates the alternation.
        assert bp.accuracy > 0.8

    def test_mispredictions_counted(self):
        bp = BranchPredictor()
        bp.update(0x500, False)  # initial weakly-taken: wrong
        assert bp.mispredictions >= 1

    def test_reset(self):
        bp = BranchPredictor()
        bp.update(0x500, True)
        bp.reset()
        assert bp.lookups == 0 and bp.history == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(entries=100)
        with pytest.raises(ValueError):
            BranchPredictorConfig(counter_bits=0)


class TestPipelinedPredictor:
    def test_gap_zero_is_immediate(self):
        seq = stride_seq(100)
        direct = StridePredictor()
        r1 = drive(direct, seq)
        wrapped = PipelinedPredictor(StridePredictor(), 0)
        r2 = drive(wrapped, seq)
        assert r1 == r2

    def test_updates_delayed_by_gap(self):
        inner = StridePredictor()
        p = PipelinedPredictor(inner, 4)
        for i in range(4):
            pred = p.predict(0x100, 0)
            p.update(0x100, 0, 0x2000 + 16 * i, pred)
        # Nothing applied yet: the inner predictor saw no update.
        from repro.predictors.base import lb_key

        state = inner.table.peek(lb_key(0x100))
        assert state.last_addr is None
        assert p.pending_updates == 4

    def test_flush_applies_everything(self):
        inner = StridePredictor()
        p = PipelinedPredictor(inner, 8)
        for i in range(5):
            pred = p.predict(0x100, 0)
            p.update(0x100, 0, 0x2000 + 16 * i, pred)
        p.flush()
        assert p.pending_updates == 0
        from repro.predictors.base import lb_key

        assert inner.table.peek(lb_key(0x100)).last_addr == 0x2000 + 16 * 4

    def test_stride_survives_gap(self):
        """Catch-up + speculative last address keep arrays predictable."""
        p = PipelinedPredictor(StridePredictor(), 6)
        spec, correct = drive(p, stride_seq(300))
        assert spec > 250
        assert correct > 0.98 * spec

    def test_cap_survives_gap_with_branch_drains(self):
        """A pointer loop stays predictable when branch flushes drain it."""
        bases = [0x2000_0010, 0x2000_0380, 0x2000_0140, 0x2000_0220]
        p = PipelinedPredictor(CAPPredictor(), 4)
        spec = correct = 0
        for rep in range(200):
            for i, b in enumerate(bases):
                pred = p.predict(0x100, 8)
                if pred.speculative:
                    spec += 1
                    correct += pred.address == b + 8
                p.update(0x100, 8, b + 8, pred)
                # Loop-exit branch: mispredicted once per traversal at
                # first, modelling the paper's "dynamic events".
                p.on_branch(0x200, taken=(i != len(bases) - 1))
        assert spec > 400
        assert correct > 0.95 * spec

    def test_without_branch_flush_tight_loop_starves(self):
        """The pathological case: no drain events, chain never resyncs.

        The ring period (6) must not divide gap+1, otherwise the constant
        phase lead of the speculative chain lands on the right address by
        coincidence.
        """
        bases = [0x2000_0000 + 0x40 * k for k in (1, 9, 4, 12, 6, 2)]
        p = PipelinedPredictor(CAPPredictor(), 4, branch_flush=False)
        spec = 0
        for rep in range(150):
            for b in bases:
                pred = p.predict(0x100, 8)
                spec += pred.speculative
                p.update(0x100, 8, b + 8, pred)
        assert spec < 50

    def test_rate_degrades_with_gap(self):
        """Figure 11's qualitative claim: accuracy drops as the gap grows."""
        bases = [0x2000_0000 + 0x40 * k for k in (1, 9, 4, 12, 6, 2)]
        results = {}
        for gap in (0, 8):
            p = PipelinedPredictor(HybridPredictor(), gap)
            spec = correct = 0
            for rep in range(150):
                for i, b in enumerate(bases):
                    pred = p.predict(0x100, 4)
                    if pred.speculative:
                        spec += 1
                        correct += pred.address == b + 4
                    p.update(0x100, 4, b + 4, pred)
                p.on_branch(0x200, rep % 7 != 0)
            results[gap] = (spec, correct)
        assert results[8][0] <= results[0][0]

    def test_requires_speculative_mode_support(self):
        from repro.predictors import LastAddressPredictor

        with pytest.raises(TypeError):
            PipelinedPredictor(LastAddressPredictor(), 4)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            PipelinedPredictor(StridePredictor(), -1)

    def test_ghr_shared_with_inner(self):
        inner = HybridPredictor()
        p = PipelinedPredictor(inner, 4)
        p.on_branch(0x500, True)
        p.on_branch(0x500, False)
        assert inner.ghr == 0b10
        assert p.ghr == 0b10

    def test_reset(self):
        p = PipelinedPredictor(StridePredictor(), 4)
        pred = p.predict(0x100, 0)
        p.update(0x100, 0, 0x2000, pred)
        p.reset()
        assert p.pending_updates == 0

    def test_name_carries_gap(self):
        assert "gap4" in PipelinedPredictor(StridePredictor(), 4).name
