"""Tests for the control-flow-indication confidence filter (Section 3.4)."""

import pytest

from repro.predictors.confidence import (
    CFI_LAST,
    CFI_OFF,
    CFI_PATHS,
    ControlFlowIndication,
)


class TestOffMode:
    def test_always_allows(self):
        cfi = ControlFlowIndication(CFI_OFF)
        cfi.record(0b1010, correct=False, speculated=True)
        assert cfi.allows(0b1010)


class TestLastMode:
    def test_allows_initially(self):
        assert ControlFlowIndication(CFI_LAST, bits=4).allows(0b0110)

    def test_blocks_recorded_pattern(self):
        cfi = ControlFlowIndication(CFI_LAST, bits=4)
        cfi.record(0b0110, correct=False, speculated=True)
        assert not cfi.allows(0b0110)
        assert cfi.allows(0b0111)

    def test_only_low_bits_matter(self):
        cfi = ControlFlowIndication(CFI_LAST, bits=4)
        cfi.record(0xF6, correct=False, speculated=True)
        assert not cfi.allows(0x06)  # same 4 LSBs

    def test_new_misprediction_overwrites(self):
        cfi = ControlFlowIndication(CFI_LAST, bits=4)
        cfi.record(0b0001, correct=False, speculated=True)
        cfi.record(0b0010, correct=False, speculated=True)
        assert cfi.allows(0b0001)       # only the last one is recorded
        assert not cfi.allows(0b0010)

    def test_correct_prediction_redeems_pattern(self):
        """Without redemption a blocked path could never unblock itself."""
        cfi = ControlFlowIndication(CFI_LAST, bits=4)
        cfi.record(0b0101, correct=False, speculated=True)
        cfi.record(0b0101, correct=True, speculated=False)
        assert cfi.allows(0b0101)

    def test_non_speculated_miss_not_recorded(self):
        cfi = ControlFlowIndication(CFI_LAST, bits=4)
        cfi.record(0b0011, correct=False, speculated=False)
        assert cfi.allows(0b0011)

    def test_reset(self):
        cfi = ControlFlowIndication(CFI_LAST, bits=4)
        cfi.record(0, correct=False, speculated=True)
        cfi.reset()
        assert cfi.allows(0)


class TestPathsMode:
    def test_blocks_only_offending_path(self):
        cfi = ControlFlowIndication(CFI_PATHS, bits=2)
        cfi.record(0b01, correct=False, speculated=True)
        assert not cfi.allows(0b01)
        assert cfi.allows(0b00)
        assert cfi.allows(0b10)

    def test_remembers_multiple_bad_paths(self):
        """Unlike CFI_LAST, the paths variant keeps all bad paths."""
        cfi = ControlFlowIndication(CFI_PATHS, bits=2)
        cfi.record(0b01, correct=False, speculated=True)
        cfi.record(0b10, correct=False, speculated=True)
        assert not cfi.allows(0b01)
        assert not cfi.allows(0b10)

    def test_per_path_redemption(self):
        cfi = ControlFlowIndication(CFI_PATHS, bits=2)
        cfi.record(0b01, correct=False, speculated=True)
        cfi.record(0b10, correct=False, speculated=True)
        cfi.record(0b01, correct=True, speculated=False)
        assert cfi.allows(0b01)
        assert not cfi.allows(0b10)


class TestValidation:
    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            ControlFlowIndication("bogus")

    def test_bits_range(self):
        with pytest.raises(ValueError):
            ControlFlowIndication(CFI_LAST, bits=0)
        with pytest.raises(ValueError):
            ControlFlowIndication(CFI_LAST, bits=17)
