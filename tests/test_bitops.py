"""Unit and property tests for repro.common.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitops import (
    bits,
    fold_xor,
    high_bits,
    is_power_of_two,
    log2_exact,
    low_bits,
    mask,
    popcount,
    sign_extend,
    truncate,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 0b1
        assert mask(4) == 0b1111
        assert mask(8) == 0xFF

    def test_word_width(self):
        assert mask(32) == 0xFFFFFFFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)

    @given(st.integers(min_value=0, max_value=128))
    def test_popcount_of_mask_is_width(self, width):
        assert popcount(mask(width)) == width


class TestBits:
    def test_middle_slice(self):
        assert bits(0b10110, 1, 4) == 0b011

    def test_full_value(self):
        assert bits(0xAB, 0, 8) == 0xAB

    def test_empty_range(self):
        assert bits(0xFF, 3, 3) == 0

    def test_beyond_value_is_zero(self):
        assert bits(0xF, 8, 12) == 0

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            bits(1, 4, 2)
        with pytest.raises(ValueError):
            bits(1, -1, 2)

    @given(st.integers(min_value=0, max_value=2**40), st.integers(0, 20),
           st.integers(0, 20))
    def test_matches_shift_and_mask(self, value, lo, width):
        assert bits(value, lo, lo + width) == (value >> lo) & mask(width)


class TestHighLowBits:
    def test_low_bits(self):
        assert low_bits(0xABCD, 8) == 0xCD

    def test_high_bits(self):
        assert high_bits(0xABCD, 16, 8) == 0xAB

    def test_high_bits_width_check(self):
        with pytest.raises(ValueError):
            high_bits(0xF, 4, 8)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_split_recombines(self, value):
        hi = high_bits(value, 32, 12)
        lo = low_bits(value, 20)
        assert (hi << 20) | lo == value


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0x7F, 8) == 127

    def test_negative(self):
        assert sign_extend(0xFF, 8) == -1
        assert sign_extend(0x80, 8) == -128

    def test_truncates_first(self):
        assert sign_extend(0x1FF, 8) == -1

    @given(st.integers(min_value=-(2**15), max_value=2**15 - 1))
    def test_roundtrip_16bit(self, value):
        assert sign_extend(value & 0xFFFF, 16) == value


class TestFoldXor:
    def test_small_value_unchanged(self):
        assert fold_xor(0b101, 8) == 0b101

    def test_folds_high_bits(self):
        # 0x1_02 folds to 0x02 ^ 0x01.
        assert fold_xor(0x102, 8) == 0x02 ^ 0x01

    def test_zero(self):
        assert fold_xor(0, 8) == 0

    def test_bad_width(self):
        with pytest.raises(ValueError):
            fold_xor(5, 0)

    @given(st.integers(min_value=0, max_value=2**64), st.integers(1, 24))
    def test_result_fits_width(self, value, width):
        assert 0 <= fold_xor(value, width) <= mask(width)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(4096) == 12

    def test_log2_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_exact(12)

    @given(st.integers(min_value=0, max_value=40))
    def test_log2_inverse(self, exp):
        assert log2_exact(1 << exp) == exp


class TestTruncate:
    @given(st.integers(min_value=0, max_value=2**48), st.integers(0, 40))
    def test_equals_mod(self, value, width):
        assert truncate(value, width) == value % (1 << width)
