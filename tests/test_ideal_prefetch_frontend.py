"""Tests for the ideal context predictor, the stride prefetcher, and the
front-end fetch-group analysis."""

import pytest

from repro.analysis import analyze_fetch_groups
from repro.eval.runner import run_predictor
from repro.predictors import (
    CAPPredictor,
    IdealContextConfig,
    IdealContextPredictor,
)
from repro.timing import (
    CacheHierarchy,
    PrefetchConfig,
    StridePrefetcher,
    simulate,
    speedup,
)
from repro.trace.trace import Trace
from repro.workloads import ArraySumWorkload, LinkedListWorkload, trace_workload


class TestIdealContextPredictor:
    def test_learns_ring_perfectly(self):
        bases = [0x2010, 0x2380, 0x2140, 0x2220]
        p = IdealContextPredictor()
        correct = total = 0
        for rep in range(20):
            for b in bases:
                pred = p.predict(0x100, 8)
                if rep >= 3:
                    total += 1
                    correct += pred.address == b + 8
                p.update(0x100, 8, b + 8, pred)
        assert correct == total

    def test_order_matters(self):
        """An a-a-b sequence is ambiguous at order 1, exact at order 2."""
        seq = [0x1000, 0x1000, 0x2000]

        def run(order):
            p = IdealContextPredictor(IdealContextConfig(order=order))
            correct = total = 0
            for rep in range(30):
                for addr in seq:
                    pred = p.predict(0x100, 0)
                    if rep >= 10:
                        total += 1
                        correct += pred.address == addr
                    p.update(0x100, 0, addr, pred)
            return correct / total

        assert run(2) > run(1)

    def test_upper_bounds_cap(self):
        """The unbounded model must beat the finite CAP on any trace."""
        trace = trace_workload(
            LinkedListWorkload(seed=7), max_instructions=30_000,
        )
        stream = trace.predictor_stream()
        ideal = run_predictor(IdealContextPredictor(), stream)
        cap = run_predictor(CAPPredictor(), stream)
        assert ideal.correct_rate >= cap.correct_rate - 0.02

    def test_shared_scope(self):
        """Shared contexts cross-train loads, like global correlation."""
        bases = [0x3000, 0x3200, 0x3100]
        p = IdealContextPredictor(IdealContextConfig(order=2, shared=True))
        for rep in range(10):
            for b in bases:
                pred = p.predict(0x100, 0)
                p.update(0x100, 0, b, pred)
        # A different static load walking the same values predicts from
        # the shared links after its own history warms (order=2 misses).
        hits = 0
        for rep in range(3):
            for b in bases:
                pred = p.predict(0x200, 0)
                hits += pred.address == b
                p.update(0x200, 0, b, pred)
        assert hits > 3

    def test_table_grows_unbounded(self):
        import random

        rng = random.Random(3)
        p = IdealContextPredictor()
        for i in range(500):
            pred = p.predict(0x100, 0)
            p.update(0x100, 0, rng.randrange(2**20) * 4, pred)
        assert p.table_size > 400

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IdealContextConfig(order=0)


class TestStridePrefetcher:
    def test_prefetches_warm_the_cache(self):
        caches = CacheHierarchy()
        pf = StridePrefetcher()
        # Walk a stride; after training, the next line should be resident
        # before the demand access touches it.
        for i in range(64):
            addr = 0x10000 + 64 * i
            caches.access(addr)
            pf.observe(0x100, addr, caches)
        assert pf.issued > 0
        # The line one stride ahead is already cached.
        assert caches.l1.access(0x10000 + 64 * 64)

    def test_no_prefetch_without_confidence(self):
        import random

        rng = random.Random(9)
        caches = CacheHierarchy()
        pf = StridePrefetcher()
        for _ in range(200):
            pf.observe(0x100, rng.randrange(2**24) * 4, caches)
        assert pf.issued < 10

    def test_degree(self):
        caches = CacheHierarchy()
        deep = StridePrefetcher(PrefetchConfig(degree=4))
        for i in range(32):
            deep.observe(0x100, 0x20000 + 64 * i, caches)
        shallow_issued = StridePrefetcher(PrefetchConfig(degree=1))
        caches2 = CacheHierarchy()
        for i in range(32):
            shallow_issued.observe(0x100, 0x20000 + 64 * i, caches2)
        assert deep.issued > shallow_issued.issued

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PrefetchConfig(degree=0)

    def test_speeds_up_memory_bound_scan(self):
        trace = trace_workload(
            ArraySumWorkload(seed=3, elements=8192), max_instructions=30_000,
        )
        base = simulate(trace)
        prefetched = simulate(trace, prefetcher=StridePrefetcher())
        assert speedup(base, prefetched) > 1.1


class TestFetchGroupAnalysis:
    def _trace(self, kinds_ips):
        t = Trace("fg")
        for kind, ip in kinds_ips:
            t.append(kind, ip, addr=0x2000)
        return t

    def test_counts_groups(self):
        t = self._trace([(0, 0x100)] * 17)
        stats = analyze_fetch_groups(t, width=8)
        assert stats.groups == 3

    def test_multi_load_detection(self):
        t = self._trace([(1, 0x100), (1, 0x104), (0, 0x108), (0, 0x10C)])
        stats = analyze_fetch_groups(t, width=4)
        assert stats.groups_with_multiple_loads == 1
        assert stats.max_loads_in_group == 2

    def test_repeated_static_load(self):
        t = self._trace([(1, 0x100), (0, 0x104), (1, 0x100), (0, 0x108)])
        stats = analyze_fetch_groups(t, width=4)
        assert stats.groups_with_repeated_static_load == 1

    def test_no_repeat_across_groups(self):
        t = self._trace([(1, 0x100), (0, 0x104), (0, 0x104), (0, 0x104),
                         (1, 0x100)])
        stats = analyze_fetch_groups(t, width=4)
        assert stats.groups_with_repeated_static_load == 0

    def test_tight_loop_shows_pressure(self):
        """The paper's extreme case arises naturally in tight loops."""
        trace = trace_workload(
            LinkedListWorkload(seed=3, via_global_ptr=False),
            max_instructions=10_000,
        )
        stats = analyze_fetch_groups(trace, width=8)
        assert stats.multi_load_fraction > 0.5
        assert stats.repeated_static_fraction > 0.0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            analyze_fetch_groups(Trace("x"), width=0)

    def test_render(self):
        t = self._trace([(1, 0x100)] * 8)
        assert "Fetch-group analysis" in analyze_fetch_groups(t).render()
