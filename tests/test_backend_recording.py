"""Observed-vs-requested backend recording.

Requesting ``REPRO_BACKEND=numpy`` does not guarantee kernel execution:
configurations outside the kernels' modelled envelope raise
``BatchFallback`` on every dispatch and the run silently executes the
scalar loop.  These tests pin that the engine — and the bench recorder
built on top of it — record what actually ran, not what was asked for.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.eval.engine import Job, execute_job

TRACE = "INT_xli"
INSTR = 8000

#: supports_batch holds for the hybrid, but this policy couples the Link
#: Table timeline to arbitration, so plan_hybrid raises BatchFallback on
#: every dispatch (see repro.kernels.hybrid).
FALLBACK_OVERRIDES = {"lt_update_policy": "unless_stride_selected"}


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_JOBS", "1")


def _bench_module():
    path = (
        Path(__file__).resolve().parent.parent
        / "benchmarks" / "record_bench.py"
    )
    spec = importlib.util.spec_from_file_location("record_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestEngineObservedBackend:
    def test_kernel_job_records_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        result = execute_job(Job(
            trace=TRACE, factory="hybrid", instructions=INSTR,
            variant="hybrid",
        ))
        assert result.backend == "numpy"
        assert result.metrics.backend == "numpy"

    def test_all_fallback_job_records_python(self, monkeypatch):
        # The regression: numpy was *requested*, every dispatch fell
        # back, and the result must say "python".
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        result = execute_job(Job(
            trace=TRACE, factory="hybrid", instructions=INSTR,
            overrides=dict(FALLBACK_OVERRIDES), variant="hybrid-fb",
        ))
        assert result.backend == "python"
        assert result.metrics.backend == "python"

    def test_fallback_matches_scalar_metrics(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        via_fallback = execute_job(Job(
            trace=TRACE, factory="hybrid", instructions=INSTR,
            overrides=dict(FALLBACK_OVERRIDES), variant="v",
        ))
        monkeypatch.setenv("REPRO_BACKEND", "python")
        scalar = execute_job(Job(
            trace=TRACE, factory="hybrid", instructions=INSTR,
            overrides=dict(FALLBACK_OVERRIDES), variant="v",
        ))
        fb, sc = via_fallback.metrics, scalar.metrics
        assert (fb.loads, fb.predictions, fb.speculative,
                fb.correct_speculative, fb.correct_predictions) == \
               (sc.loads, sc.predictions, sc.speculative,
                sc.correct_speculative, sc.correct_predictions)


class TestRecordBenchProbe:
    def test_python_request_probes_python(self, monkeypatch):
        bench = _bench_module()
        assert bench._observed_backend("python") == "python"

    def test_numpy_request_probes_numpy(self, monkeypatch):
        bench = _bench_module()
        assert bench._observed_backend("numpy") == "numpy"

    def test_all_fallback_roster_probes_python(self, monkeypatch):
        # If every measured variant falls back, the entry must record
        # "python" even though numpy was requested.
        import repro.telemetry.stats as stats

        bench = _bench_module()
        monkeypatch.setattr(stats, "DEFAULT_VARIANTS", {
            "hybrid": ("hybrid", dict(FALLBACK_OVERRIDES), None),
        })
        assert bench._observed_backend("numpy") == "python"

    def test_probe_restores_backend_env(self, monkeypatch):
        bench = _bench_module()
        monkeypatch.setenv("REPRO_BACKEND", "python")
        bench._observed_backend("numpy")
        import os
        assert os.environ["REPRO_BACKEND"] == "python"
