"""Fuzz tests: assembler round-trips and a CPU-vs-oracle comparison."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.isa.instructions import Instruction, Op
from repro.isa.memory import Memory
from repro.isa.program import ProgramBuilder

# ---------------------------------------------------------------------------
# Assembler round-trip: str(instruction) is valid assembler syntax that
# parses back to an identical instruction.
# ---------------------------------------------------------------------------

registers = st.integers(0, 15)
immediates = st.integers(-(2**20), 2**20)

non_control = st.one_of(
    st.builds(Instruction, op=st.just(Op.LI), rd=registers, imm=immediates),
    st.builds(Instruction, op=st.just(Op.MOV), rd=registers, rs1=registers),
    st.builds(
        Instruction,
        op=st.sampled_from([
            Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR,
            Op.XOR, Op.SHL, Op.SHR,
        ]),
        rd=registers, rs1=registers, rs2=registers,
    ),
    st.builds(
        Instruction,
        op=st.sampled_from([Op.ADDI, Op.MULI, Op.ANDI]),
        rd=registers, rs1=registers, imm=immediates,
    ),
    st.builds(Instruction, op=st.just(Op.LD), rd=registers, rs1=registers,
              imm=immediates),
    st.builds(Instruction, op=st.just(Op.ST), rs1=registers, rs2=registers,
              imm=immediates),
    st.builds(Instruction, op=st.just(Op.PUSH), rs2=registers),
    st.builds(Instruction, op=st.just(Op.POP), rd=registers),
    st.builds(Instruction, op=st.just(Op.NOP)),
    st.builds(Instruction, op=st.just(Op.HALT)),
)


@settings(max_examples=200)
@given(instr=non_control)
def test_assembler_roundtrip(instr):
    program = assemble(str(instr))
    parsed = program.instructions[0]
    assert parsed.op == instr.op
    assert parsed.rd == instr.rd
    assert parsed.rs1 == instr.rs1
    assert parsed.rs2 == instr.rs2
    assert parsed.imm == instr.imm


# ---------------------------------------------------------------------------
# CPU vs oracle: straight-line ALU programs evaluated two ways.
# ---------------------------------------------------------------------------

_MASK32 = 0xFFFFFFFF


def _oracle(instrs, regs):
    """Reference interpretation of straight-line non-memory code."""
    regs = list(regs)
    for instr in instrs:
        op = instr.op
        if op is Op.LI:
            regs[instr.rd] = instr.imm & _MASK32
        elif op is Op.MOV:
            regs[instr.rd] = regs[instr.rs1]
        elif op is Op.ADD:
            regs[instr.rd] = (regs[instr.rs1] + regs[instr.rs2]) & _MASK32
        elif op is Op.SUB:
            regs[instr.rd] = (regs[instr.rs1] - regs[instr.rs2]) & _MASK32
        elif op is Op.MUL:
            regs[instr.rd] = (regs[instr.rs1] * regs[instr.rs2]) & _MASK32
        elif op is Op.AND:
            regs[instr.rd] = regs[instr.rs1] & regs[instr.rs2]
        elif op is Op.OR:
            regs[instr.rd] = regs[instr.rs1] | regs[instr.rs2]
        elif op is Op.XOR:
            regs[instr.rd] = regs[instr.rs1] ^ regs[instr.rs2]
        elif op is Op.SHL:
            regs[instr.rd] = (regs[instr.rs1] << (regs[instr.rs2] & 31)) & _MASK32
        elif op is Op.SHR:
            regs[instr.rd] = regs[instr.rs1] >> (regs[instr.rs2] & 31)
        elif op is Op.ADDI:
            regs[instr.rd] = (regs[instr.rs1] + instr.imm) & _MASK32
        elif op is Op.MULI:
            regs[instr.rd] = (regs[instr.rs1] * instr.imm) & _MASK32
        elif op is Op.ANDI:
            regs[instr.rd] = regs[instr.rs1] & instr.imm & _MASK32
    return regs


alu_instr = st.one_of(
    st.builds(Instruction, op=st.just(Op.LI), rd=registers, imm=immediates),
    st.builds(Instruction, op=st.just(Op.MOV), rd=registers, rs1=registers),
    st.builds(
        Instruction,
        op=st.sampled_from([
            Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR,
        ]),
        rd=registers, rs1=registers, rs2=registers,
    ),
    st.builds(
        Instruction,
        op=st.sampled_from([Op.ADDI, Op.MULI, Op.ANDI]),
        rd=registers, rs1=registers, imm=immediates,
    ),
)


@settings(max_examples=100, deadline=None)
@given(instrs=st.lists(alu_instr, max_size=40))
def test_cpu_matches_oracle_on_alu_code(instrs):
    # r15 is the stack pointer: the CPU initialises it to the stack base at
    # entry while the oracle starts from zeros, so exclude instructions
    # that read or write it.
    instrs = [
        i for i in instrs if i.rd != 15 and 15 not in i.sources()
    ]
    b = ProgramBuilder()
    for instr in instrs:
        b.emit(instr)
    b.halt()

    cpu = CPU(Memory())
    result = cpu.run(b.build())
    expected = _oracle(instrs, [0] * 16)
    assert result.registers[:15] == expected[:15]


# ---------------------------------------------------------------------------
# Randomised memory round trips through the CPU.
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.integers(0, _MASK32), min_size=1, max_size=10),
    base=st.integers(0x1000, 0x100000).map(lambda x: x * 4),
)
def test_store_load_roundtrip_through_cpu(values, base):
    b = ProgramBuilder()
    # Store all values, then load them back into r2..; accumulate xor.
    b.li(10, base)
    b.li(2, 0)
    for i, value in enumerate(values):
        b.li(3, value)
        b.st(3, 10, 4 * i)
    for i in range(len(values)):
        b.ld(4, 10, 4 * i)
        b.xor(2, 2, 4)
    b.halt()
    cpu = CPU(Memory())
    result = cpu.run(b.build())
    expected = 0
    for value in values:
        expected ^= value & _MASK32
    assert result.registers[2] == expected


def test_random_program_never_crashes_predictors():
    """Random (but valid) programs produce traces every predictor accepts."""
    from repro.eval.runner import run_predictor
    from repro.predictors import CAPPredictor, HybridPredictor
    from repro.trace.trace import Trace

    rng = random.Random(11)
    b = ProgramBuilder()
    b.label("main")
    b.li(10, 0x2000_0000)
    b.label("loop")
    for _ in range(30):
        choice = rng.randrange(4)
        if choice == 0:
            b.ld(rng.randrange(1, 9), 10, rng.randrange(0, 64) * 4)
        elif choice == 1:
            b.st(rng.randrange(1, 9), 10, rng.randrange(0, 64) * 4)
        elif choice == 2:
            b.addi(10, 10, rng.choice([-16, 16, 32]))
        else:
            b.add(rng.randrange(1, 9), rng.randrange(1, 9),
                  rng.randrange(1, 9))
    b.jmp("loop")
    trace = Trace("fuzz")
    CPU(Memory()).run(b.build(), max_instructions=5000, trace=trace)
    for predictor in (CAPPredictor(), HybridPredictor()):
        metrics = run_predictor(predictor, trace.predictor_stream())
        assert metrics.loads > 0
