"""PredictorSession facade: served-vs-offline parity, isolation, warm-up.

The acceptance bar for the serving layer is *byte-identical* predictions:
whatever a client receives over the wire must equal what an offline
``run_on_columns`` pass over the same events would have produced — on
both backends, and regardless of how the stream is chunked into feeds.
"""

import pytest

from repro.eval.metrics import PredictorMetrics
from repro.serve.session import (
    PredictorSession,
    SessionConfig,
    run_on_stream,
)
from repro.verify.fuzz import generate_events

N_EVENTS = 600


def _events(profile="mixed", seed=0, n=N_EVENTS):
    return [tuple(event) for event in generate_events(profile, seed, n)]


def offline_records(factory, events, warmup=0, overrides=None):
    """Reference: scalar offline run with a capturing observer."""
    from repro.eval.engine import Job, build_predictor

    predictor = build_predictor(Job(
        trace="", factory=factory, overrides=dict(overrides or {}),
    ))
    metrics = PredictorMetrics(name="offline", trace="", suite="serve")
    captured = []

    def _capture(ip, offset, actual, prediction):
        captured.append((
            ip, offset, actual,
            prediction.address if prediction.made else None,
            prediction.speculative, prediction.source,
        ))

    run_on_stream(
        predictor, events, metrics,
        warmup_loads=warmup, observer=_capture,
    )
    return captured, metrics


def _metric_tuple(m):
    return (m.loads, m.predictions, m.speculative,
            m.correct_speculative, m.correct_predictions)


class TestParity:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("factory", ["stride", "cap", "hybrid"])
    def test_single_feed_matches_offline(
        self, monkeypatch, backend, factory
    ):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        events = _events(seed=3)
        session = PredictorSession(SessionConfig(factory=factory))
        served = session.feed(events)
        expected, metrics = offline_records(factory, events)
        assert served == expected
        assert _metric_tuple(session.finish()) == _metric_tuple(metrics)

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_chunked_feeds_match_offline(self, monkeypatch, backend):
        # Chunking must be invisible: first feed may take the kernel
        # path, later feeds continue scalar on the trained predictor.
        monkeypatch.setenv("REPRO_BACKEND", backend)
        events = _events("rds_walk", seed=7)
        session = PredictorSession(SessionConfig(factory="hybrid"))
        served = []
        for start in range(0, len(events), 150):
            served.extend(session.feed(events[start : start + 150]))
        expected, metrics = offline_records("hybrid", events)
        assert served == expected
        assert _metric_tuple(session.finish()) == _metric_tuple(metrics)

    def test_kernel_path_actually_ran(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        session = PredictorSession(SessionConfig(factory="hybrid"))
        session.feed(_events(seed=1))
        assert session.kernel_feeds == 1
        assert session.backend == "numpy"
        assert session.metrics.backend == "numpy"

    def test_scalar_backend_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        session = PredictorSession(SessionConfig(factory="hybrid"))
        session.feed(_events(seed=1))
        assert session.kernel_feeds == 0
        assert session.backend == "python"

    def test_warmup_spanning_feed_boundary(self, monkeypatch):
        # Warm-up is global across feeds: 100 loads of warm-up split
        # over two feeds must account exactly like one offline run.
        monkeypatch.setenv("REPRO_BACKEND", "python")
        events = _events("aliasing", seed=5)
        session = PredictorSession(
            SessionConfig(factory="cap", warmup_loads=100)
        )
        served = []
        served.extend(session.feed(events[:200]))
        served.extend(session.feed(events[200:]))
        expected, metrics = offline_records("cap", events, warmup=100)
        # Records cover *every* load (a served client always gets its
        # prediction); only the metrics respect warm-up.
        assert served == expected
        assert _metric_tuple(session.finish()) == _metric_tuple(metrics)
        assert len(served) > session.metrics.loads


class TestIsolation:
    def test_interleaved_sessions_do_not_share_state(self, monkeypatch):
        # Feeding two sessions alternately must equal running each
        # alone — LB/LT/GHR state is per-session, not per-process.
        monkeypatch.setenv("REPRO_BACKEND", "python")
        events_a = _events("rds_walk", seed=11)
        events_b = _events("branch_churn", seed=22)
        a = PredictorSession(SessionConfig(factory="hybrid"), "a")
        b = PredictorSession(SessionConfig(factory="hybrid"), "b")
        got_a, got_b = [], []
        span = max(len(events_a), len(events_b))
        for start in range(0, span, 100):
            got_a.extend(a.feed(events_a[start : start + 100]))
            got_b.extend(b.feed(events_b[start : start + 100]))
        solo_a, _ = offline_records("hybrid", events_a)
        solo_b, _ = offline_records("hybrid", events_b)
        assert got_a == solo_a
        assert got_b == solo_b


class TestLifecycle:
    def test_feed_after_finish_raises(self):
        session = PredictorSession(SessionConfig(factory="stride"), "s1")
        session.feed(_events(n=50))
        session.finish()
        with pytest.raises(RuntimeError, match="s1 is finished"):
            session.feed(_events(n=10))

    def test_finish_is_idempotent(self):
        session = PredictorSession(SessionConfig(factory="stride"))
        session.feed(_events(n=50))
        assert session.finish() is session.finish()

    def test_empty_feed(self):
        session = PredictorSession(SessionConfig(factory="stride"))
        assert session.feed([]) == []
        assert session.seen_events == 0

    def test_instrumented_session_attribution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        session = PredictorSession(
            SessionConfig(factory="hybrid", instrument=True)
        )
        session.feed(_events(seed=2))
        metrics = session.finish()
        assert hasattr(metrics, "attribution")
        assert sum(metrics.attribution().values()) >= 0


class TestSessionConfig:
    def test_from_dict_picks_known_fields(self):
        config = SessionConfig.from_dict({
            "type": "open", "factory": "cap", "warmup_loads": 10,
            "overrides": {"history_length": 2}, "variant": "v",
        })
        assert config.factory == "cap"
        assert config.warmup_loads == 10
        assert config.overrides == {"history_length": 2}
        assert config.variant == "v"

    def test_from_dict_rejects_non_dict_overrides(self):
        with pytest.raises(ValueError, match="overrides"):
            SessionConfig.from_dict({"factory": "cap", "overrides": [1]})

    def test_unknown_factory_fails_at_build(self):
        with pytest.raises(KeyError, match="unknown predictor factory"):
            PredictorSession(SessionConfig(factory="bogus"))
