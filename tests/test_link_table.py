"""Tests for the Link Table: tags, PF bits, associativity (Sections 3.4-3.5)."""

import pytest

from repro.predictors.link_table import LinkTable, LinkTableConfig


def small_lt(**overrides):
    params = dict(entries=16, ways=1, tag_bits=4, pf_bits=0)
    params.update(overrides)
    return LinkTable(LinkTableConfig(**params))


class TestGeometry:
    def test_index_and_history_bits(self):
        cfg = LinkTableConfig(entries=4096, ways=1, tag_bits=8)
        assert cfg.index_bits == 12
        assert cfg.history_bits == 20

    def test_associative_geometry(self):
        cfg = LinkTableConfig(entries=4096, ways=4, tag_bits=8)
        assert cfg.index_bits == 10

    def test_assoc_requires_tags(self):
        with pytest.raises(ValueError):
            LinkTableConfig(entries=16, ways=2, tag_bits=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkTableConfig(entries=12)
        with pytest.raises(ValueError):
            LinkTableConfig(entries=16, ways=3)


class TestBasicLinks:
    def test_empty_lookup(self):
        assert small_lt().lookup(5) == (None, False)

    def test_update_then_lookup(self):
        lt = small_lt()
        lt.update(5, 0x2000)
        assert lt.lookup(5) == (0x2000, True)

    def test_no_pf_overwrites_immediately(self):
        lt = small_lt()
        lt.update(5, 0x2000)
        lt.update(5, 0x3000)
        assert lt.lookup(5)[0] == 0x3000

    def test_occupancy(self):
        lt = small_lt()
        lt.update(1, 0x10)
        lt.update(2, 0x20)
        assert lt.occupancy() == 2

    def test_clear(self):
        lt = small_lt()
        lt.update(1, 0x10)
        lt.clear()
        assert lt.occupancy() == 0
        assert lt.lookup(1) == (None, False)


class TestTags:
    def test_tag_mismatch_reports_low_confidence(self):
        lt = small_lt(tag_bits=4)
        history_a = 0b0001_0101      # tag 1, index 5
        history_b = 0b0010_0101      # tag 2, same index
        lt.update(history_a, 0x2000)
        link, tag_ok = lt.lookup(history_b)
        assert link == 0x2000        # a prediction is still offered
        assert not tag_ok            # but not speculation-worthy

    def test_tag_match_after_conflict_overwrite(self):
        lt = small_lt(tag_bits=4)
        lt.update(0b0001_0101, 0x2000)
        lt.update(0b0010_0101, 0x3000)
        assert lt.lookup(0b0010_0101) == (0x3000, True)
        assert lt.lookup(0b0001_0101) == (0x3000, False)

    def test_no_tags_always_tag_ok(self):
        lt = small_lt(tag_bits=0)
        lt.update(5, 0x2000)
        assert lt.lookup(5 + 16)[1]  # aliases, still "ok" without tags

    def test_tag_mismatch_statistics(self):
        lt = small_lt(tag_bits=4)
        lt.update(0b0001_0101, 0x2000)
        lt.lookup(0b0010_0101)
        assert lt.tag_mismatches == 1


class TestSetAssociativeLT:
    def test_two_contexts_coexist(self):
        lt = LinkTable(LinkTableConfig(entries=16, ways=2, tag_bits=4, pf_bits=0))
        # Same set (index bits 0-2), different tags.
        h1 = (0b0001 << 3) | 0b101
        h2 = (0b0010 << 3) | 0b101
        lt.update(h1, 0x111)
        lt.update(h2, 0x222)
        assert lt.lookup(h1) == (0x111, True)
        assert lt.lookup(h2) == (0x222, True)

    def test_lru_eviction_within_set(self):
        lt = LinkTable(LinkTableConfig(entries=16, ways=2, tag_bits=4, pf_bits=0))
        h = [(tag << 3) | 0b001 for tag in (1, 2, 3)]
        lt.update(h[0], 0xA)
        lt.update(h[1], 0xB)
        lt.update(h[0], 0xA)       # refresh h0
        lt.update(h[2], 0xC)       # evicts h1
        assert lt.lookup(h[0]) == (0xA, True)
        assert not lt.lookup(h[1])[1]
        assert lt.lookup(h[2]) == (0xC, True)


class TestPFBits:
    def test_link_needs_two_consistent_updates(self):
        lt = small_lt(pf_bits=4)
        lt.update(5, 0x2010)
        assert lt.lookup(5) == (None, False)   # first sighting: PF only
        lt.update(5, 0x2010)
        assert lt.lookup(5)[0] == 0x2010       # second sighting: recorded

    def test_alternating_values_never_recorded(self):
        """Irregular loads cannot pollute the LT (Section 3.5)."""
        lt = small_lt(pf_bits=4)
        for value in (0x2010, 0x2020, 0x2030, 0x2010, 0x2020):
            lt.update(5, value)
        assert lt.lookup(5) == (None, False)
        assert lt.pf_rejections > 0

    def test_hysteresis_against_single_blip(self):
        lt = small_lt(pf_bits=4)
        lt.update(5, 0x2010)
        lt.update(5, 0x2010)      # recorded
        lt.update(5, 0x2020)      # blip: PF updated, link kept
        assert lt.lookup(5)[0] == 0x2010
        lt.update(5, 0x2020)      # seen twice: now replaced
        assert lt.lookup(5)[0] == 0x2020

    def test_pf_bits_compare_bits_2_to_5(self):
        lt = small_lt(pf_bits=4)
        # 0x2010 and 0x2050 differ in bit 6 only -> same PF bits (2..5).
        lt.update(5, 0x2010)
        lt.update(5, 0x2050)
        assert lt.lookup(5)[0] == 0x2050  # PF matched, link written

    def test_decoupled_pf_table(self):
        lt = LinkTable(LinkTableConfig(
            entries=16, ways=1, tag_bits=4, pf_bits=4,
            pf_decoupled=True, pf_table_entries=64,
        ))
        # Two histories sharing an LT slot but with distinct extended
        # indices keep separate PF state.
        h1 = (0b0001 << 4) | 0b0101
        h2 = (0b0010 << 4) | 0b0101
        lt.update(h1, 0x2010)
        lt.update(h2, 0x3020)
        lt.update(h1, 0x2010)
        assert lt.lookup(h1)[0] == 0x2010

    def test_decoupled_pf_table_validation(self):
        with pytest.raises(ValueError):
            LinkTable(LinkTableConfig(
                entries=16, pf_decoupled=True, pf_table_entries=60,
            ))

    def test_link_writes_counted(self):
        lt = small_lt(pf_bits=4)
        lt.update(5, 0x2010)
        lt.update(5, 0x2010)
        assert lt.link_writes == 1
