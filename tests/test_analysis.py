"""Tests for the Section 2 load-behaviour analysis."""

import pytest

from repro.analysis import (
    CLASS_CONSTANT,
    CLASS_CONTEXT,
    CLASS_IRREGULAR,
    CLASS_STRIDE,
    analyze_trace,
    fingerprint,
    load_fingerprint,
)
from repro.analysis.patterns import classify
from repro.trace.trace import Trace
from repro.workloads import (
    ArraySumWorkload,
    LinkedListWorkload,
    RandomAccessWorkload,
    trace_workload,
)


class TestClassify:
    def test_constant(self):
        p = classify([0x2000] * 20)
        assert p.classification == CLASS_CONSTANT
        assert p.distinct_addresses == 1

    def test_stride(self):
        p = classify([0x2000 + 16 * i for i in range(20)])
        assert p.classification == CLASS_STRIDE
        assert p.dominant_stride == 16

    def test_negative_stride(self):
        p = classify([0x9000 - 8 * i for i in range(20)])
        assert p.classification == CLASS_STRIDE
        assert p.dominant_stride == -8

    def test_context(self):
        ring = [0x2010, 0x2380, 0x2140, 0x2220]
        p = classify(ring * 10)
        assert p.classification == CLASS_CONTEXT
        assert p.context_fraction > 0.85
        assert p.stride_fraction < 0.5

    def test_irregular(self):
        import random

        rng = random.Random(5)
        p = classify([rng.randrange(2**24) * 4 for _ in range(100)])
        assert p.classification == CLASS_IRREGULAR

    def test_too_short_returns_none(self):
        assert classify([1, 2, 3]) is None


class TestAnalyzeTrace:
    def test_linked_list_is_context(self):
        trace = trace_workload(
            LinkedListWorkload(seed=3, via_global_ptr=False),
            max_instructions=20_000,
        )
        shares = analyze_trace(trace).class_shares()
        assert shares.get(CLASS_CONTEXT, 0) > 0.8

    def test_array_is_stride(self):
        trace = trace_workload(ArraySumWorkload(seed=3), max_instructions=20_000)
        shares = analyze_trace(trace).class_shares()
        assert shares.get(CLASS_STRIDE, 0) > 0.8

    def test_random_is_irregular(self):
        trace = trace_workload(
            RandomAccessWorkload(seed=3), max_instructions=20_000,
        )
        shares = analyze_trace(trace).class_shares()
        assert shares.get(CLASS_IRREGULAR, 0) > 0.8

    def test_render(self):
        trace = trace_workload(ArraySumWorkload(seed=3), max_instructions=10_000)
        text = analyze_trace(trace).render(top=3)
        assert "stride" in text
        assert "dynamic loads" in text

    def test_profiles_carry_ips(self):
        trace = trace_workload(ArraySumWorkload(seed=3), max_instructions=10_000)
        analysis = analyze_trace(trace)
        assert all(p.ip > 0 for p in analysis.profiles)

    def test_min_samples_respected(self):
        trace = Trace("tiny")
        for i in range(4):
            trace.append(1, 0x100, addr=0x2000, offset=0)
        assert analyze_trace(trace, min_samples=8).profiles == []


class TestReporting:
    def test_class_shares_empty_analysis(self):
        from repro.analysis.patterns import TraceAnalysis

        assert TraceAnalysis(trace_name="empty", loads=0).class_shares() == {}

    def test_class_shares_sum_to_one(self):
        trace = trace_workload(ArraySumWorkload(seed=3), max_instructions=10_000)
        shares = analyze_trace(trace).class_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_profile_str_mentions_class_and_stride(self):
        p = classify([0x2000 + 16 * i for i in range(20)])
        text = str(p)
        assert "stride" in text
        assert "(16)" in text

    def test_loads_count_includes_unclassified(self):
        trace = Trace("mix")
        for i in range(20):
            trace.append(1, 0x100, addr=0x2000 + 4 * i, offset=0)
        trace.append(1, 0x200, addr=0x9999, offset=0)  # below MIN_SAMPLES
        analysis = analyze_trace(trace)
        assert analysis.loads == 21
        assert [p.ip for p in analysis.profiles] == [0x100]


class TestFingerprint:
    def test_empty_stream(self):
        assert fingerprint([]) == ""

    def test_custom_alphabet(self):
        assert fingerprint([5, 9, 5], alphabet="xy") == "x y x"

    def test_paper_style_letters(self):
        assert fingerprint([10, 80, 40, 20, 10, 80]) == "A B C D A B"

    def test_limit(self):
        assert fingerprint(range(100), limit=5).count(" ") == 4

    def test_alphabet_overflow(self):
        text = fingerprint(range(30))
        assert "?" in text

    def test_load_fingerprint_filters_by_ip(self):
        trace = Trace("f")
        trace.append(1, 0x100, addr=0x2000, offset=0)
        trace.append(1, 0x200, addr=0x9999, offset=0)
        trace.append(1, 0x100, addr=0x3000, offset=0)
        trace.append(1, 0x100, addr=0x2000, offset=0)
        assert load_fingerprint(trace, 0x100) == "A B A"

    def test_repeating_ring_fingerprint(self):
        """The Section 2.1 fingerprint shape: a short ring repeats."""
        ring = [0x18, 0x88, 0x48, 0x28]
        text = fingerprint(ring * 3)
        assert text == "A B C D A B C D A B C D"
