"""Span tracer: ids, ring bounds, Chrome trace-event export contract."""

import json
import re

import pytest

from repro.obs.tracing import (
    TRACE_EVENT_SCHEMA_PATH,
    Tracer,
    mint_trace_id,
    validate_trace_export,
)


class TestTraceIds:
    def test_ids_are_unique_and_deterministic_in_shape(self):
        first, second = mint_trace_id(), mint_trace_id()
        assert first != second
        assert re.fullmatch(r"t[0-9a-f]+-[0-9a-f]+", first)


class TestTracer:
    def test_span_records_completed_event(self):
        tracer = Tracer()
        with tracer.span("work", trace="t1", batch=3) as span:
            span.set("extra", "yes")
        (event,) = tracer.events()
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["dur"] >= 0.0
        assert event["args"]["trace"] == "t1"
        assert event["args"]["batch"] == 3
        assert event["args"]["extra"] == "yes"

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("work")
        assert tracer.span("other") is span  # shared null span
        with span:
            span.set("k", "v")
        tracer.record("direct", start_us=0.0, dur_us=1.0)
        assert tracer.events() == []

    def test_ring_capacity_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(f"s{i}", start_us=float(i), dur_us=1.0)
        names = [e["name"] for e in tracer.events()]
        assert names == ["s3", "s4"]
        assert tracer.dropped == 3
        assert len(tracer) == 2

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.record("s", start_us=10.0, dur_us=-5.0)
        assert tracer.events()[0]["dur"] == 0.0

    def test_events_clear(self):
        tracer = Tracer()
        tracer.record("s", start_us=0.0, dur_us=1.0)
        assert len(tracer.events(clear=True)) == 1
        assert tracer.events() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestExportContract:
    def test_schema_file_is_checked_in(self):
        document = json.loads(
            TRACE_EVENT_SCHEMA_PATH.read_text(encoding="utf-8")
        )
        assert document["$id"] == "repro.trace_event/v1"

    def test_export_validates_and_is_json_serialisable(self):
        tracer = Tracer()
        with tracer.span("serve.batch.exec", trace="t1-1", batch=2):
            pass
        export = tracer.export()
        assert export["displayTimeUnit"] == "ms"
        assert validate_trace_export(export) == []
        json.dumps(export)  # no unserialisable values

    def test_empty_export_is_valid(self):
        assert validate_trace_export(Tracer().export()) == []

    def test_validation_catches_malformed_events(self):
        assert validate_trace_export({"traceEvents": [{"ph": "X"}]})
        assert validate_trace_export({})
        assert validate_trace_export(
            {"traceEvents": [{"ph": "B", "name": "n", "ts": 0.0,
                              "dur": 0.0, "pid": 1, "tid": 1}]}
        )
