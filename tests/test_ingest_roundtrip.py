"""Property-based round-trips through the external-trace adapters.

Three layers of guarantee, each fuzzed with Hypothesis:

* **record level** — ``write`` then ``read`` reproduces the records a
  format can represent, and the writers are idempotent (canonical output
  re-renders byte-identically);
* **trace level** — ingesting a round-tripped file yields byte-identical
  ``ps_*`` predictor-stream columns, so every figure computed from an
  ingested trace is independent of how many times the file was copied
  through the adapters;
* **evaluation level** — a fig5-style cell (stride / CAP / hybrid
  metrics) is equal on the original and the round-tripped trace, and the
  ingested stream passes the four-way differential harness
  (:func:`repro.verify.differential.verify_events`).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import PredictorMetrics
from repro.ingest import IngestRecord, get_format, read_path, records_to_trace
from repro.ingest.records import KIND_FETCH, KIND_LOAD, KIND_STORE
from repro.serve.session import run_predictor
from repro.verify.differential import VARIANTS, verify_events

GOLDEN = Path(__file__).parent / "ingest_fixtures" / "golden"

MAX_U64 = 2**64 - 1

addresses = st.integers(min_value=0, max_value=MAX_U64)

dram_records = st.lists(
    st.builds(
        IngestRecord,
        kind=st.sampled_from([KIND_LOAD, KIND_STORE, KIND_FETCH]),
        addr=addresses,
        pc=st.none(),          # the format cannot carry a PC
        size=st.just(4),       # or a size; pin the defaults the reader uses
        cycle=st.integers(min_value=0, max_value=10**9),
    ),
    min_size=1,
    max_size=60,
)

pin_records = st.lists(
    st.builds(
        IngestRecord,
        kind=st.sampled_from([KIND_LOAD, KIND_STORE]),
        addr=addresses,
        pc=st.one_of(st.none(), addresses),
        size=st.integers(min_value=1, max_value=64),
    ),
    min_size=1,
    max_size=60,
)


def _reread(format_name, records):
    adapter = get_format(format_name)
    return adapter.read(adapter.write(records))


def _ps_arrays(records, format_name):
    trace = records_to_trace(records, "fuzz", format_name=format_name)
    return trace.predictor_columns().arrays()


def _metric_tuple(metrics: PredictorMetrics) -> tuple:
    return (
        metrics.loads,
        metrics.predictions,
        metrics.correct_predictions,
        metrics.speculative,
        metrics.correct_speculative,
    )


# ---------------------------------------------------------------------------
# Record-level round-trips
# ---------------------------------------------------------------------------


@given(dram_records)
def test_dramsim_roundtrip_preserves_records(records):
    assert _reread("dramsim", records) == records


@given(pin_records)
def test_pincsv_roundtrip_preserves_representable_fields(records):
    rereads = _reread("pincsv", records)
    assert [(r.kind, r.addr, r.pc or 0, r.size) for r in rereads] == [
        (r.kind, r.addr, r.pc or 0, r.size) for r in records
    ]


@pytest.mark.parametrize("format_name, strategy",
                         [("dramsim", dram_records), ("pincsv", pin_records)])
@given(data=st.data())
def test_writers_are_idempotent(format_name, strategy, data):
    """write(read(write(r))) == write(r): one pass canonicalizes."""
    records = data.draw(strategy)
    adapter = get_format(format_name)
    once = adapter.write(records)
    assert adapter.write(adapter.read(once)) == once


# ---------------------------------------------------------------------------
# Trace-level round-trips: byte-identical ps_* columns
# ---------------------------------------------------------------------------


@given(dram_records)
def test_dramsim_roundtrip_ps_columns_identical(records):
    direct = _ps_arrays(records, "dramsim")
    rereads = _ps_arrays(_reread("dramsim", records), "dramsim")
    for a, b in zip(direct, rereads):
        assert a.dtype == b.dtype == np.int64
        assert np.array_equal(a, b)


@given(pin_records)
def test_pincsv_roundtrip_ps_columns_identical(records):
    direct = _ps_arrays(records, "pincsv")
    rereads = _ps_arrays(_reread("pincsv", records), "pincsv")
    for a, b in zip(direct, rereads):
        assert a.dtype == b.dtype == np.int64
        assert np.array_equal(a, b)


def test_transcode_dramsim_to_pincsv_keeps_memory_stream():
    """Cross-format transcode preserves the load/store reference stream."""
    _, records = read_path(GOLDEN / "stride.trc", "dramsim")
    refs = [r for r in records if r.kind != KIND_FETCH]
    transcoded = _reread("pincsv", refs)
    assert [(r.kind, r.addr) for r in transcoded] == [
        (r.kind, r.addr) for r in refs
    ]


# ---------------------------------------------------------------------------
# Evaluation-level: metrics and the differential harness
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=20)
@given(pin_records)
def test_fig5_cell_equal_after_roundtrip(records):
    """Stride/CAP/hybrid metrics match on original vs round-tripped trace."""
    original = records_to_trace(records, "fuzz", format_name="pincsv")
    rereads = records_to_trace(
        _reread("pincsv", records), "fuzz", format_name="pincsv"
    )
    for variant in ("stride", "cap", "hybrid"):
        a = run_predictor(VARIANTS[variant].production(), original)
        b = run_predictor(VARIANTS[variant].production(), rereads)
        assert _metric_tuple(a) == _metric_tuple(b)


@settings(deadline=None, max_examples=15)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), min_size=1,
        max_size=40,
    ),
    variant=st.sampled_from(["stride", "cap", "hybrid"]),
)
def test_ingested_stream_passes_differential(addrs, variant):
    """The four-way differential harness accepts ingested event streams."""
    text = "".join(f"0x{a:x} READ {i * 10}\n" for i, a in enumerate(addrs))
    records = get_format("dramsim").read(text.encode())
    trace = records_to_trace(records, "fuzz", format_name="dramsim")
    assert verify_events(variant, trace.predictor_stream()) is None


@pytest.mark.parametrize("fixture, format_name",
                         [("stride.trc", "dramsim"), ("mixed.csv", "pincsv")])
def test_golden_fixture_passes_differential(fixture, format_name):
    name, records = read_path(GOLDEN / fixture, format_name)
    trace = records_to_trace(records, fixture, format_name=name)
    for variant in ("stride", "cap", "hybrid"):
        assert verify_events(variant, trace.predictor_stream()) is None
