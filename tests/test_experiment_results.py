"""Tests for the experiment result containers (rendering and math)."""

import pytest

from repro.eval.experiments import (
    GapResult,
    HistoryLengthResult,
    SelectorResult,
    SpeedupResult,
    SuiteComparison,
)
from repro.eval.metrics import PredictorMetrics, aggregate_by_suite


def _metrics(trace, suite, loads, spec, correct):
    return PredictorMetrics(
        name="v", trace=trace, suite=suite, loads=loads,
        predictions=spec, speculative=spec, correct_speculative=correct,
        correct_predictions=correct,
    )


class TestSuiteComparison:
    def _result(self):
        runs = {
            "a": [_metrics("t1", "INT", 100, 60, 59)],
            "b": [_metrics("t1", "INT", 100, 80, 78)],
        }
        return SuiteComparison(
            title="T", variants=["a", "b"],
            suites={
                v: aggregate_by_suite(ms, name=v) for v, ms in runs.items()
            },
            runs=runs,
        )

    def test_average(self):
        result = self._result()
        assert result.average("a").prediction_rate == pytest.approx(0.6)

    def test_render_contains_all_parts(self):
        text = self._result().render()
        assert "T" in text
        assert "a rate" in text and "b acc" in text
        assert "INT" in text and "Average" in text

    def test_suite_row_formats_percentages(self):
        row = self._result().suite_row("INT")
        assert row[0] == "INT"
        assert row[1].endswith("%")


class TestSpeedupResult:
    def _result(self):
        r = SpeedupResult(title="S", variants=["x"])
        r.per_trace = {"t1": {"x": 1.2}, "t2": {"x": 1.0}}
        r.suite_of = {"t1": "INT", "t2": "MM"}
        r.base_cycles = {"t1": 1000, "t2": 3000}
        return r

    def test_suite_average_cycle_weighted(self):
        averages = self._result().suite_average("x")
        # total base = 4000; improved = 1000/1.2 + 3000/1.0 = 3833.33
        assert averages["Average"] == pytest.approx(4000 / (1000 / 1.2 + 3000))
        assert averages["INT"] == pytest.approx(1.2)

    def test_render(self):
        text = self._result().render()
        assert "t1" in text and "1.200x" in text
        assert "Average (x)" in text


class TestHistoryLengthResult:
    def test_best_length(self):
        r = HistoryLengthResult(title="H", lengths=[1, 2, 4])
        r.series["s"] = [0.4, 0.7, 0.6]
        assert r.best_length("s") == 2

    def test_render(self):
        r = HistoryLengthResult(title="H", lengths=[1, 2])
        r.series["s"] = [0.5, 0.6]
        text = r.render()
        assert "50.0%" in text and "60.0%" in text


class TestSelectorResult:
    def test_render_orders_states(self):
        r = SelectorResult(title="Sel")
        r.distributions["Average"] = {
            "strong cap": 0.5, "weak cap": 0.3,
            "weak stride": 0.1, "strong stride": 0.1,
        }
        r.correct_selection["Average"] = 0.999
        r.dual_share["Average"] = 0.8
        text = r.render()
        assert "strong stride" in text
        assert "99.90%" in text


class TestGapResult:
    def test_render(self):
        r = GapResult(title="G", gaps=[0, 8])
        r.series["hybrid"] = {0: (0.7, 0.99, 0.69), 8: (0.6, 0.96, 0.58)}
        text = r.render()
        assert "imm rate" in text and "gap 8 acc" in text
        assert "70.0%" in text
