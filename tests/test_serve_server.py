"""Prediction server end-to-end: lifecycle, backpressure, drain, shards.

Plain ``asyncio.run`` inside synchronous test functions — no asyncio
pytest plugin is assumed.  Every test binds an ephemeral port
(``port=0``) so suites can run in parallel.  Deterministic overload and
timeout windows come from a stub session whose ``feed`` blocks until
the test releases it.
"""

import asyncio
import struct
import threading

import pytest

from repro.eval.metrics import PredictorMetrics
from repro.serve import protocol
from repro.serve import server as server_mod
from repro.serve.server import PredictionServer, ServeConfig
from repro.verify.fuzz import generate_events

EVENTS = [tuple(e) for e in generate_events("mixed", 0, 300)]


class _Client:
    """Minimal framed client with split send/recv for in-flight tests."""

    def __init__(self, port):
        self.port = port
        self.frames = protocol.FrameReader()

    async def connect(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        return self

    async def send(self, frame):
        self.writer.write(frame)
        await self.writer.drain()

    async def recv(self):
        while True:
            data = await self.reader.read(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            for _kind, payload in self.frames.push(data):
                return protocol.decode_json(payload)

    async def rpc(self, frame):
        await self.send(frame)
        return await self.recv()

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _start(config=None):
    server = PredictionServer(config or ServeConfig(port=0))
    await server.start()
    return server


def _open_msg(**extra):
    return protocol.encode_json(
        {"type": "open", "factory": "stride", **extra}
    )


class _BlockingSession:
    """Stub session: ``feed`` blocks until the test releases it."""

    instances = []

    def __init__(self, config, session_id=""):
        self.config = config
        self.session_id = session_id
        self.entered = threading.Event()
        self.release = threading.Event()
        self.seen_loads = 0
        self.seen_events = 0
        self.feeds = 0
        self.kernel_feeds = 0
        self.finished = False
        self.metrics = PredictorMetrics(name="stub", suite="serve")
        _BlockingSession.instances.append(self)

    backend = "python"

    def feed(self, events, observer=None):
        self.entered.set()
        assert self.release.wait(10), "test never released the stub"
        self.feeds += 1
        return []

    def finish(self):
        self.finished = True
        return self.metrics


class TestRoundTrip:
    def test_open_feed_finish(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")

        async def scenario():
            server = await _start()
            client = await _Client(server.port).connect()
            opened = await client.rpc(_open_msg(factory="hybrid"))
            assert opened["type"] == "opened"
            assert opened["shard"] is None

            # Binary feed, then a JSON feed on the now-trained session.
            first = await client.rpc(protocol.encode_events(EVENTS[:200]))
            assert first["type"] == "predictions"
            assert first["count"] == sum(
                1 for e in EVENTS[:200] if e[0] == 1
            )
            assert all(len(record) == 6 for record in first["records"])
            second = await client.rpc(protocol.encode_json({
                "type": "feed",
                "events": [list(e) for e in EVENTS[200:]],
            }))
            assert second["type"] == "predictions"

            finish = await client.rpc(
                protocol.encode_json({"type": "finish"})
            )
            assert finish["type"] == "metrics"
            assert finish["backend"] == "numpy"
            assert finish["loads"] == first["count"] + second["count"]
            assert finish["metrics"]["loads"] == finish["loads"]

            pong = await client.rpc(protocol.encode_json({"type": "ping"}))
            assert pong == {"type": "pong"}
            stats = await client.rpc(
                protocol.encode_json({"type": "stats"})
            )
            assert stats["sessions_finished"] == 1
            assert stats["sessions_dropped"] == 0
            assert stats["kernel_feeds"] == 1
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_feed_without_open_rejected(self):
        async def scenario():
            server = await _start()
            client = await _Client(server.port).connect()
            reply = await client.rpc(protocol.encode_events(EVENTS[:10]))
            assert reply["type"] == "error" and reply["code"] == "session"
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_second_open_on_connection_rejected(self):
        async def scenario():
            server = await _start()
            client = await _Client(server.port).connect()
            assert (await client.rpc(_open_msg()))["type"] == "opened"
            again = await client.rpc(_open_msg())
            assert again["type"] == "error" and again["code"] == "session"
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_bad_config_rejected(self):
        async def scenario():
            server = await _start()
            client = await _Client(server.port).connect()
            reply = await client.rpc(_open_msg(overrides=[1, 2]))
            assert reply["type"] == "error" and reply["code"] == "config"
            reply = await client.rpc(_open_msg(factory="bogus"))
            assert reply["type"] == "error" and reply["code"] == "config"
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_session_limit(self):
        async def scenario():
            server = await _start(ServeConfig(port=0, max_sessions=1))
            first = await _Client(server.port).connect()
            assert (await first.rpc(_open_msg()))["type"] == "opened"
            second = await _Client(server.port).connect()
            reply = await second.rpc(_open_msg())
            assert reply["type"] == "error"
            assert reply["code"] == "overloaded"
            await first.close()
            await second.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_concurrent_opens_cannot_overshoot_session_limit(self):
        """Regression: the admission check used to be re-read *after*
        the backend ``await``, so two opens racing through the
        suspension both passed a ``max_sessions=1`` guard.  The slot is
        now reserved before the handler suspends."""

        class _SlowOpenShards:
            def __init__(self):
                self.entered = asyncio.Event()
                self.gate = asyncio.Event()

            async def open(self, session_id, config, trace_id=None):
                self.entered.set()
                await self.gate.wait()

            def shard_of(self, session_id):
                return 0

            async def discard(self, session_id):
                pass

            async def close(self):
                self.gate.set()

        async def scenario():
            server = await _start(ServeConfig(port=0, max_sessions=1))
            shards = _SlowOpenShards()
            server._shards = shards
            first = await _Client(server.port).connect()
            second = await _Client(server.port).connect()
            await first.send(_open_msg())
            # Park the first open inside the backend await, holding
            # its reservation across the suspension.
            await asyncio.wait_for(shards.entered.wait(), 10)
            reply = await second.rpc(_open_msg())
            assert reply["type"] == "error"
            assert reply["code"] == "overloaded"
            shards.gate.set()
            opened = await first.recv()
            assert opened["type"] == "opened"
            assert server._sessions_active == 1
            await first.close()
            await second.close()
            await server.shutdown()

        asyncio.run(scenario())


class TestProtocolHostility:
    def test_oversized_frame_counts_protocol_error(self):
        async def scenario():
            server = await _start(ServeConfig(port=0, max_frame=1024))
            client = await _Client(server.port).connect()
            await client.send(struct.pack(">I", 1 << 30))
            reply = await client.recv()
            assert reply["type"] == "error"
            assert reply["code"] == "protocol"
            with pytest.raises(ConnectionError):
                await client.recv()
            await client.close()
            assert server.stats.protocol_errors == 1
            await server.shutdown()

        asyncio.run(scenario())

    def test_unknown_message_type_is_protocol_error(self):
        async def scenario():
            server = await _start()
            client = await _Client(server.port).connect()
            reply = await client.rpc(
                protocol.encode_json({"type": "nope"})
            )
            assert reply["type"] == "error"
            assert reply["code"] == "protocol"
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())


class TestOverloadAndTimeout:
    def test_backpressure_rejects_when_queue_full(self, monkeypatch):
        monkeypatch.setattr(
            server_mod, "PredictorSession", _BlockingSession
        )
        monkeypatch.setattr(_BlockingSession, "instances", [])

        async def scenario():
            loop = asyncio.get_running_loop()
            server = await _start(
                ServeConfig(port=0, queue_depth=1, max_batch=1)
            )
            a = await _Client(server.port).connect()
            b = await _Client(server.port).connect()
            c = await _Client(server.port).connect()
            for client in (a, b, c):
                assert (await client.rpc(_open_msg()))["type"] == "opened"
            stub_a, stub_b, _stub_c = _BlockingSession.instances

            # A's feed occupies the single worker slot (blocked in the
            # stub) ...
            await a.send(protocol.encode_events(EVENTS[:4]))
            assert await loop.run_in_executor(
                None, stub_a.entered.wait, 5
            )
            # ... B's feed fills the depth-1 queue ...
            await b.send(protocol.encode_events(EVENTS[:4]))
            while server._queue.qsize() < 1:
                await asyncio.sleep(0.01)
            # ... so C's feed is rejected immediately, not buffered.
            reply = await c.rpc(protocol.encode_events(EVENTS[:4]))
            assert reply["type"] == "error"
            assert reply["code"] == "overloaded"
            assert server.stats.rejected_feeds == 1

            # Releasing the stubs answers A and B normally — the
            # overload poisoned nobody else's session.
            stub_a.release.set()
            stub_b.release.set()
            assert (await a.recv())["type"] == "predictions"
            assert (await b.recv())["type"] == "predictions"
            for client in (a, b, c):
                await client.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_timeout_drops_session(self, monkeypatch):
        monkeypatch.setattr(
            server_mod, "PredictorSession", _BlockingSession
        )
        monkeypatch.setattr(_BlockingSession, "instances", [])

        async def scenario():
            server = await _start(
                ServeConfig(port=0, session_timeout_s=0.1)
            )
            client = await _Client(server.port).connect()
            assert (await client.rpc(_open_msg()))["type"] == "opened"
            reply = await client.rpc(protocol.encode_events(EVENTS[:4]))
            assert reply["type"] == "error" and reply["code"] == "timeout"
            assert server.stats.timeouts == 1
            assert server.stats.sessions_dropped == 1
            # The timed-out session cannot be fed again.
            reply = await client.rpc(protocol.encode_events(EVENTS[:4]))
            assert reply["type"] == "error" and reply["code"] == "session"
            # Unblock the worker thread before shutting down.
            for stub in _BlockingSession.instances:
                stub.release.set()
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())


class TestDisconnectAndDrain:
    def test_disconnect_without_finish_counts_dropped(self):
        async def scenario():
            server = await _start()
            client = await _Client(server.port).connect()
            assert (await client.rpc(_open_msg()))["type"] == "opened"
            reply = await client.rpc(protocol.encode_events(EVENTS[:100]))
            assert reply["type"] == "predictions"
            await client.close()
            # The handler observes EOF asynchronously.
            for _ in range(500):
                if server.stats.sessions_dropped:
                    break
                await asyncio.sleep(0.01)
            assert server.stats.sessions_dropped == 1
            assert server._sessions_active == 0

            # Other sessions keep working after the drop.
            other = await _Client(server.port).connect()
            assert (await other.rpc(_open_msg()))["type"] == "opened"
            reply = await other.rpc(protocol.encode_events(EVENTS[:50]))
            assert reply["type"] == "predictions"
            finish = await other.rpc(
                protocol.encode_json({"type": "finish"})
            )
            assert finish["type"] == "metrics"
            await other.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_disconnect_mid_feed_does_not_poison_others(self, monkeypatch):
        monkeypatch.setattr(
            server_mod, "PredictorSession", _BlockingSession
        )
        monkeypatch.setattr(_BlockingSession, "instances", [])

        async def scenario():
            loop = asyncio.get_running_loop()
            server = await _start(ServeConfig(port=0, max_batch=1))
            a = await _Client(server.port).connect()
            b = await _Client(server.port).connect()
            assert (await a.rpc(_open_msg()))["type"] == "opened"
            assert (await b.rpc(_open_msg()))["type"] == "opened"
            stub_a, stub_b = _BlockingSession.instances

            # A's feed is mid-execution when A vanishes.
            await a.send(protocol.encode_events(EVENTS[:4]))
            assert await loop.run_in_executor(
                None, stub_a.entered.wait, 5
            )
            await a.close()
            stub_a.release.set()
            for _ in range(500):
                if server.stats.sessions_dropped:
                    break
                await asyncio.sleep(0.01)
            assert server.stats.sessions_dropped == 1

            # B is unaffected.
            stub_b.release.set()
            reply = await b.rpc(protocol.encode_events(EVENTS[:4]))
            assert reply["type"] == "predictions"
            finish = await b.rpc(protocol.encode_json({"type": "finish"}))
            assert finish["type"] == "metrics"
            await b.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_drain_refuses_new_opens(self):
        async def scenario():
            server = await _start()
            client = await _Client(server.port).connect()
            assert (await client.rpc(_open_msg()))["type"] == "opened"
            reply = await client.rpc(protocol.encode_events(EVENTS[:100]))
            assert reply["type"] == "predictions"
            finish = await client.rpc(
                protocol.encode_json({"type": "finish"})
            )
            assert finish["type"] == "metrics"

            # A second connection established *before* the drain begins:
            # it survives the listener closing, but its open is refused.
            late = await _Client(server.port).connect()
            shutdown = asyncio.ensure_future(server.shutdown())
            await asyncio.sleep(0)
            reply = await late.rpc(_open_msg())
            assert reply["type"] == "error"
            assert reply["code"] == "draining"
            await client.close()
            await late.close()
            await shutdown
            assert server.stats.sessions_dropped == 0

        asyncio.run(scenario())


class TestSharded:
    def test_sharded_open_feed_finish(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")

        async def scenario():
            server = await _start(ServeConfig(port=0, shards=1))
            client = await _Client(server.port).connect()
            opened = await client.rpc(_open_msg(factory="hybrid"))
            assert opened["type"] == "opened"
            assert opened["shard"] == 0
            reply = await client.rpc(protocol.encode_events(EVENTS))
            assert reply["type"] == "predictions"
            finish = await client.rpc(
                protocol.encode_json({"type": "finish"})
            )
            assert finish["type"] == "metrics"
            assert finish["backend"] == "numpy"
            assert finish["loads"] == reply["count"]
            stats = await client.rpc(
                protocol.encode_json({"type": "stats"})
            )
            assert stats["sessions_dropped"] == 0
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_sharded_matches_local(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")

        async def run_one(config):
            server = await _start(config)
            client = await _Client(server.port).connect()
            await client.rpc(_open_msg(factory="hybrid"))
            reply = await client.rpc(protocol.encode_events(EVENTS))
            finish = await client.rpc(
                protocol.encode_json({"type": "finish"})
            )
            await client.close()
            await server.shutdown()
            return reply["records"], finish["metrics"]

        async def scenario():
            local = await run_one(ServeConfig(port=0))
            sharded = await run_one(ServeConfig(port=0, shards=1))
            assert local == sharded

        asyncio.run(scenario())
