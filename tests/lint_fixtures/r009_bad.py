"""R009 bad fixture: the frozen pre-fix ``fold_xor_array`` and a
provable int64 width overflow.

``fold_xor_array`` below is the historical kernel bug verbatim: the
fold loop right-shifts ``remaining`` until it reaches zero, but
``remaining`` starts as a bare copy of the int64 input.  Any value at
or above ``2**63`` arrives negative, arithmetic ``>>`` converges to
``-1`` instead of ``0``, and the loop never terminates.

``mix_tags`` multiplies two 40-bit fields: the product needs up to 80
value bits, more than the 63 an int64 holds, and nothing masks it
before the widening happens.
"""

import numpy as np


def fold_xor_array(values, width):
    if width <= 0:
        return np.zeros_like(values)
    mask = np.int64((1 << width) - 1)
    folded = np.zeros_like(values)
    remaining = values.copy()  # sign bit survives: negative inputs spin
    while True:
        live = remaining != 0
        if not live.any():
            break
        folded[live] ^= remaining[live] & mask
        remaining[live] >>= width
    return folded


def mix_tags(tags, salts):
    lo_tags = tags & ((1 << 40) - 1)
    lo_salts = salts & ((1 << 40) - 1)
    mixed = lo_tags * lo_salts  # up to 80 value bits in an int64
    return mixed
