"""R007 good fixture (obs scope): the admin endpoint's sanctioned
shapes — commit-before-await, and takes that move shared state into a
local *in the same statement* as the write.

Mirrors ``repro.obs.admin``: handlers are read-only against shared
stats, mutation happens before the first suspension point, and buffer
rotation swaps the shared list out atomically (one statement reads and
replaces it) so the awaited export works on a private snapshot.
"""


class ReadOnlyAdminEndpoint:
    def __init__(self, rotate_every):
        self.rotate_every = rotate_every
        self.scrapes = 0
        self.spans = []
        self.writer = None

    async def on_metrics(self, request):
        self.scrapes += 1  # atomic read-modify-write, before the await
        payload = {"scrapes": self.scrapes, "spans": len(self.spans)}
        await self.writer.send(payload)
        return payload

    async def on_spans(self, request):
        # Take the buffer before suspending: the swap reads and writes in
        # one statement, so concurrent scrapes each export a disjoint
        # private snapshot instead of double-rotating a stale one.
        exported, self.spans = self.spans, []
        await self.writer.send({"spans": exported})
        return len(exported)
