"""R004 bad fixture: unpicklable payloads inside ``Job(...)`` specs."""


class Job:
    """Stand-in for the engine's Job spec (matched by name)."""

    def __init__(self, factory, payload):
        self.factory = factory
        self.payload = payload


def build_jobs(traces):
    def local_factory():  # function-local: unpicklable
        return object()

    scale = lambda x: 2 * x  # noqa: E731 — deliberately bad

    jobs = [Job(factory=lambda: object(), payload=traces[0])]
    jobs.append(Job(factory=local_factory, payload=traces[0]))
    jobs.append(Job(factory=scale, payload=traces[0]))
    return jobs
