"""R007 bad fixture: check-then-act across an await, and a worker
process mutating parameter state.

The async shape is the re-introduced serving-layer admission race: the
session limit is checked, the handler suspends while the backend opens,
and the counter is incremented against the stale check — two
concurrent opens both pass the guard and the limit overshoots.
"""

import multiprocessing


class RacyServer:
    def __init__(self, limit):
        self.limit = limit
        self.active = 0
        self.backend = None

    async def on_open(self, session_id, config):
        if self.active >= self.limit:  # the check
            return "overloaded"
        await self.backend.open(session_id, config)  # suspension
        self.active += 1  # the act, against a stale check
        return "opened"

    async def on_close(self, session_id):
        current = self.active
        await self.backend.close(session_id)
        self.active = current - 1  # same shape via a local snapshot
        return "closed"


def shard_worker(manager, requests, results):
    while True:
        item = requests.get()
        if item is None:
            break
        manager.served += 1  # lost: `manager` is a pickled copy
        results.put(item)


def start_worker(manager):
    requests = multiprocessing.Queue()
    results = multiprocessing.Queue()
    process = multiprocessing.Process(
        target=shard_worker, args=(manager, requests, results)
    )
    process.start()
    return process, requests, results
