"""R003 good fixture: the masked idioms from ``common/bitops``."""

from repro.common.bitops import mask

MASK32 = (1 << 32) - 1


def next_address(base, stride):
    return (base + stride) & MASK32


def shift_history(history, bit, history_bits):
    return ((history << 1) | bit) & mask(history_bits)


def strides_match(addr, last_addr, stride):
    # Computing a *predicate* from a difference is fine: the unbounded
    # intermediate is consumed by the comparison, never stored.
    return addr - last_addr == stride


def count_mismatches(tag_mismatches, tag_bits):
    # Geometry/statistics identifiers never qualify a statement.
    tag_mismatches += 1
    return tag_mismatches + tag_bits
