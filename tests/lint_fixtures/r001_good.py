"""R001 good fixture: complete resets and reset-free read-only classes."""


class BasePredictor:
    pass


class CompleteResetPredictor(BasePredictor):
    def __init__(self, depth):
        self.depth = depth
        self.table = {}
        self.hits = 0
        self.pending = []

    def update(self, ip, addr):
        self.table[ip] = addr
        self.hits += 1
        self.pending.append(addr)

    def reset(self):
        self.table = {}
        self.hits = 0
        self.pending.clear()


class GeometryOnly(BasePredictor):
    """Attributes are assigned once and only *read* afterwards — they are
    configuration, not state, so no reset is required."""

    def __init__(self, width):
        self.width = width
        self.limit = 1 << width

    def covers(self, value):
        return value < self.limit
