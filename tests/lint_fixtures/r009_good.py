"""R009 good fixture: the fixed fold kernel and width-bounded mixing.

``fold_xor_array`` drops the sign bit at entry — ``remaining`` is
proven non-negative, so the shift loop provably reaches zero for any
int64 input (and the mask is the identity on canonical addresses).
``mix_tags`` narrows its fields so the widest provable intermediate
fits the 63 value bits of a signed int64.
"""

import numpy as np


def fold_xor_array(values, width):
    if width <= 0:
        return np.zeros_like(values)
    mask = np.int64((1 << width) - 1)
    folded = np.zeros_like(values)
    remaining = values & np.int64((1 << 63) - 1)  # sign bit dropped
    while True:
        live = remaining != 0
        if not live.any():
            break
        folded[live] ^= remaining[live] & mask
        remaining[live] >>= width
    return folded


def mix_tags(tags, salts):
    lo_tags = tags & ((1 << 31) - 1)
    lo_salts = salts & ((1 << 31) - 1)
    mixed = lo_tags + lo_salts  # at most 32 value bits: safely in range
    return mixed
