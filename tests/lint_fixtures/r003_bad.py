"""R003 bad fixture: unmasked address/history/tag arithmetic.

Linted under a virtual ``src/repro/predictors/`` path (the rule only
scans the hardware-modelling packages).
"""


def next_address(base, stride):
    value = base + stride  # unmasked Add on address-like values
    return value


def shift_history(history, bit):
    history = (history << 1) | bit  # unmasked LShift
    return history


def accumulate(addr, delta):
    addr += delta  # augmented Add without a masking '&'
    return addr
