"""R001 bad fixture: incomplete and missing ``reset()`` methods.

Never imported — :mod:`tests.test_lint` reads this file's *text* and
lints it under a virtual ``src/repro/predictors/`` path.
"""


class BasePredictor:
    pass


class LeakyHistoryPredictor(BasePredictor):
    """``reset()`` forgets ``pending`` — the PR 3 bug shape."""

    def __init__(self, depth):
        self.depth = depth        # read-only geometry: no reset obligation
        self.table = {}
        self.hits = 0
        self.pending = []

    def update(self, ip, addr):
        self.table[ip] = addr
        self.hits += 1
        self.pending.append(addr)

    def reset(self):
        self.table = {}
        self.hits = 0
        # BUG: self.pending survives the reset.


class TrainedNoResetPredictor(BasePredictor):
    """Stateful simulator class with no reset entry point at all."""

    def __init__(self):
        self.seen = {}

    def observe(self, ip):
        self.seen[ip] = True
