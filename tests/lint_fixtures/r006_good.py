"""R006 good fixture: the full batch contract, declared together."""


class BatchedPredictor:
    #: Advertises the kernel pair to the dispatch layer.
    supports_batch = True

    def predict(self, ip):
        return None

    def predict_batch(self, batch):
        return [None] * batch.n_loads

    def update_batch(self, batch, result):
        pass


class ScalarOnlyPredictor:
    """No batch surface at all: the contract does not apply."""

    def predict(self, ip):
        return None

    def update(self, ip, addr):
        pass
