"""R002 good fixture: the deterministic idioms the rule sanctions."""

import random
from collections import OrderedDict


def roll_table_index(entries, seed):
    rng = random.Random(seed)  # seeded instance, not the global RNG
    return rng.randrange(entries)


def visit_ordered(values):
    out = []
    for value in sorted(set(values)):  # sorted() restores determinism
        out.append(value)
    return out


def drain_oldest(cache: OrderedDict):
    return cache.popitem(last=False)  # keyword form is deterministic


def read_knob(config):
    return config.scale  # configuration arrives via parameters
