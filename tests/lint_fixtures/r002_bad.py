"""R002 bad fixture: every class of non-determinism the rule knows."""

import os
import random
import time


def roll_table_index(entries):
    return random.randrange(entries)  # unseeded global RNG


def stamp_result(result):
    result["when"] = time.time()  # wall-clock read
    return result


def visit_unordered(values):
    out = []
    for value in {v for v in values}:  # set iteration: hash order
        out.append(value)
    return out


def drain_one(cache):
    return cache.popitem()  # bare popitem: arbitrary entry


def read_knob():
    scale = os.environ["REPRO_SCALE"]  # env read outside eval/
    fallback = os.getenv("REPRO_OTHER")  # ditto
    return scale, fallback
