"""R010 bad fixture: every way the ingest error contract erodes.

``_cmd_convert`` calls a raiser with no guard, re-raises with a fully
dynamic message, and returns a computed exit code.  ``_cmd_validate``
guards with the wrong exception family and returns an exit code that
is not part of the 0/1/2 contract.  ``_cmd_ingest`` ships new wording
no conformance expectation or test pins.
"""


class FormatError(Exception):
    pass


class RegistryError(Exception):
    pass


def _parse(path):
    raise FormatError(f"{path}: no records found")


def _cmd_convert(args):
    records = _parse(args.path)  # FormatError escapes: no try/except
    if not records:
        raise RegistryError(str(args))  # fully dynamic message
    return len(records)  # computed, not a literal 0/1/2


def _cmd_validate(args):
    try:
        _parse(args.path)
    except ValueError:  # wrong family: FormatError still escapes
        return 3  # not a documented exit code
    return 0


def _cmd_ingest(args):
    raise FormatError("manifest weather uncharted")  # unpinned wording
