"""R010 good fixture: pinned wording, guarded raisers, literal exits.

The raise's literal fragment is contract text the conformance corpus
already pins; every handler call that can raise an ingest error sits
under a ``try`` catching the family; and handlers return only the
documented literal exit codes 0/1/2.
"""


class FormatError(Exception):
    pass


class RegistryError(Exception):
    pass


def _parse(path):
    raise FormatError(f"{path}: no records found")


def _cmd_convert(args):
    try:
        records = _parse(args.path)
    except (FormatError, RegistryError) as error:
        print(error)
        return 2
    print(len(records))
    return 0


def _cmd_validate(args):
    try:
        _parse(args.path)
    except FormatError as error:
        print(error)
        return 1
    return 0
