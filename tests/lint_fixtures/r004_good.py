"""R004 good fixture: Jobs built from picklable data and registry names."""


class Job:
    """Stand-in for the engine's Job spec (matched by name)."""

    def __init__(self, factory, payload):
        self.factory = factory
        self.payload = payload


def module_level_factory():
    return object()


def build_jobs(traces):
    # Module-level callables pickle by qualified name; string registry
    # keys (the engine's FACTORIES idiom) are even safer.
    jobs = [Job(factory=module_level_factory, payload=traces[0])]
    jobs.append(Job(factory="cap_default", payload=traces[0]))
    return jobs
