"""R005 good fixture: both drivers consult the same predictor surface."""


def run_on_stream(predictor, stream):
    correct = 0
    for ip, addr, is_branch in stream:
        if predictor.predict(ip) == addr:
            correct += 1
        predictor.update(ip, addr)
        if is_branch:
            predictor.on_branch(ip)
    return correct


def run_on_columns(predictor, ips, addrs, branch_flags):
    correct = 0
    for i in range(len(ips)):
        if predictor.predict(ips[i]) == addrs[i]:
            correct += 1
        predictor.update(ips[i], addrs[i])
        if branch_flags[i]:
            predictor.on_branch(ips[i])
    return correct
