"""R006 bad fixture: three broken slices of the batch contract."""


class PlanWithoutCommit:
    """predict_batch alone: the dispatcher's commit call would crash."""

    supports_batch = True

    def predict_batch(self, batch):
        return [None] * batch.n_loads


class CommitWithoutPlan:
    """update_batch alone: dead code the dispatcher can never reach."""

    supports_batch = True

    def update_batch(self, batch, result):
        pass


class UndeclaredKernels:
    """Both kernels but no supports_batch: silently stays scalar."""

    def predict_batch(self, batch):
        return [None] * batch.n_loads

    def update_batch(self, batch, result):
        pass
