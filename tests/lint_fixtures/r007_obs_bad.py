"""R007 bad fixture (obs scope): an admin endpoint handler that
check-then-acts on shared scrape stats across an await.

The handler reads the shared scrape counter to decide whether to rotate
the span buffer, suspends while streaming the response, then commits
both the rotation and the counter from the stale read — two concurrent
scrapes both see the pre-rotation count, rotate twice, and drop a
buffer of spans that was never exported.
"""


class RacyAdminEndpoint:
    def __init__(self, rotate_every):
        self.rotate_every = rotate_every
        self.scrapes = 0
        self.spans = []
        self.writer = None

    async def on_metrics(self, request):
        seen = self.scrapes  # the check: a snapshot of shared state
        payload = {"scrapes": seen, "spans": len(self.spans)}
        await self.writer.send(payload)  # suspension: scrapers interleave
        self.scrapes = seen + 1  # the act, against the stale snapshot
        return payload

    async def on_spans(self, request):
        if self.scrapes % self.rotate_every == 0:  # the check
            await self.writer.send({"spans": self.spans})  # suspension
            self.spans = []  # the act: rotation decided on a dead read
        return len(self.spans)
