"""R008 bad fixture: address arithmetic laundered through renames.

Every shape here is invisible to R003's statement-level name filter —
the statements doing the unmasked arithmetic mention only neutral
names (``cursor``, ``probe``, ``mixed``).  R008 must follow the taint
from the address-named source through the assignments (and through the
``passthrough`` helper's return value) to the unmasked operation.
"""


def passthrough(base):
    # Returns its address argument unmasked: call sites inherit taint.
    return base


class LaunderingPredictor:
    def __init__(self, table_bits):
        self.table_bits = table_bits
        self.base = 0

    def lookup(self, addr, step):
        cursor = addr  # taint flows through the rename
        probe = cursor + step  # unmasked add on a laundered address
        return probe

    def advance(self, step):
        mixed = passthrough(self.base)  # taint through the call
        mixed += step  # unmasked augmented add
        return mixed
