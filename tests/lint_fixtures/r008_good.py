"""R008 good fixture: the same dataflow shapes, masked where it counts.

Renames and helper calls still carry the taint — but every arithmetic
step lands under a masking ``&`` (or inside a masking helper), and a
helper that masks its own return value does not taint its call sites.
One-hot masks built by shifting a *constant* by a bounded index
(``1 << pattern``) are lookup geometry, not field growth, and stay
silent too.
"""

MASK32 = (1 << 32) - 1


def fold_xor(value, width):
    folded = 0
    mask = (1 << width) - 1
    while value:
        folded ^= value & mask
        value >>= width
    return folded


def masked_passthrough(base):
    return base & MASK32  # masked at the return: callers stay clean


class MaskingPredictor:
    def __init__(self, table_bits):
        self.table_bits = table_bits
        self.base = 0

    def lookup(self, addr, step):
        cursor = addr
        probe = (cursor + step) & MASK32  # masked at the operation
        return probe

    def advance(self, step):
        mixed = masked_passthrough(self.base)
        mixed = (mixed + step) & MASK32
        return mixed

    def classify(self, ghr):
        pattern = ghr & ((1 << self.table_bits) - 1)
        return 1 << pattern  # one-hot from a bounded index: geometry
