"""R005 bad fixture: the fast path forgets a predictor behaviour."""


def run_on_stream(predictor, stream):
    correct = 0
    for ip, addr, is_branch in stream:
        predicted = predictor.predict(ip)
        if predicted == addr:
            correct += 1
        predictor.update(ip, addr)
        if is_branch:
            predictor.on_branch(ip)  # only the reference path does this
    return correct


def run_on_columns(predictor, ips, addrs):
    correct = 0
    for i in range(len(ips)):
        if predictor.predict(ips[i]) == addrs[i]:
            correct += 1
        predictor.update(ips[i], addrs[i])
    return correct
