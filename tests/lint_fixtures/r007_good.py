"""R007 good fixture: reserve-before-await with compensation, and a
worker process that communicates through queues only.

The async shape is the sanctioned fix for the admission race: the slot
is taken *before* the handler suspends (check and act are adjacent, no
interleaving window), and the reservation is rolled back in the except
path of the awaiting ``try`` — which R007 recognises as compensation,
not as a new race.
"""

import multiprocessing


class ReservingServer:
    def __init__(self, limit):
        self.limit = limit
        self.active = 0
        self.backend = None

    async def on_open(self, session_id, config):
        if self.active >= self.limit:
            return "overloaded"
        self.active += 1  # reserve before suspending
        try:
            await self.backend.open(session_id, config)
        except Exception:
            self.active -= 1  # compensation: release the reservation
            return "error"
        return "opened"

    async def on_close(self, session_id):
        self.active -= 1  # release first; close cannot readmit anyone
        await self.backend.close(session_id)
        return "closed"


def shard_worker(requests, results):
    served = 0
    while True:
        item = requests.get()
        if item is None:
            break
        served += 1  # process-local tally, shipped via the queue
        results.put((item, served))


def start_worker():
    requests = multiprocessing.Queue()
    results = multiprocessing.Queue()
    process = multiprocessing.Process(
        target=shard_worker, args=(requests, results)
    )
    process.start()
    return process, requests, results
