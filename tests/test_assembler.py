"""Tests for the text assembler."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import FP, SP, Op


class TestBasicParsing:
    def test_empty_source(self):
        assert len(assemble("")) == 0

    def test_comments_ignored(self):
        program = assemble("; comment only\n# another\n  nop ; trailing\n")
        assert len(program) == 1

    def test_simple_program(self):
        program = assemble(
            """
            main:
                li r1, 10
                addi r1, r1, -1
                bne r1, r0, main
                halt
            """
        )
        assert len(program) == 4
        assert program.instructions[2].target == 0

    def test_memory_operands(self):
        program = assemble("ld r1, 8(r2)\nst r3, -4(sp)\nld r4, (r5)")
        ld = program.instructions[0]
        assert ld.op is Op.LD and ld.imm == 8 and ld.rs1 == 2
        st = program.instructions[1]
        assert st.imm == -4 and st.rs1 == SP and st.rs2 == 3
        assert program.instructions[2].imm == 0

    def test_hex_immediates(self):
        program = assemble("li r1, 0x2000\nld r2, 0x10(r1)")
        assert program.instructions[0].imm == 0x2000
        assert program.instructions[1].imm == 0x10

    def test_register_aliases(self):
        program = assemble("mov sp, fp")
        instr = program.instructions[0]
        assert instr.rd == SP and instr.rs1 == FP

    def test_label_same_line(self):
        program = assemble("loop: nop\njmp loop")
        assert program.labels["loop"] == 0

    def test_multiple_labels_one_point(self):
        program = assemble("a: b: halt")
        assert program.labels["a"] == program.labels["b"] == 0

    def test_every_mnemonic_assembles(self):
        source = """
        l:
            li r1, 1
            mov r2, r1
            add r3, r1, r2
            sub r3, r1, r2
            mul r3, r1, r2
            div r3, r1, r2
            mod r3, r1, r2
            and r3, r1, r2
            or r3, r1, r2
            xor r3, r1, r2
            shl r3, r1, r2
            shr r3, r1, r2
            addi r3, r1, 2
            muli r3, r1, 2
            andi r3, r1, 2
            ld r4, 4(r1)
            st r4, 4(r1)
            beq r1, r2, l
            bne r1, r2, l
            blt r1, r2, l
            bge r1, r2, l
            jmp l
            call l
            ret
            jr r1
            push r1
            pop r2
            nop
            halt
        """
        assert len(assemble(source)) == 29


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="bad register"):
            assemble("li r16, 1")
        with pytest.raises(AssemblyError, match="bad register"):
            assemble("mov rx, r1")

    def test_bad_immediate(self):
        with pytest.raises(AssemblyError, match="bad immediate"):
            assemble("li r1, banana")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("add r1, r2")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError, match="bad memory operand"):
            assemble("ld r1, r2")

    def test_undefined_label(self):
        with pytest.raises(Exception):
            assemble("jmp nowhere")

    def test_bad_label_name(self):
        with pytest.raises(AssemblyError, match="bad label"):
            assemble("2cool: nop")

    def test_error_carries_line_number(self):
        try:
            assemble("nop\nnop\nbadop r1\n")
        except AssemblyError as exc:
            assert exc.line_no == 3
        else:  # pragma: no cover
            pytest.fail("expected AssemblyError")


class TestRoundTrip:
    def test_assembled_matches_builder_output(self):
        from repro.isa.program import ProgramBuilder

        text = assemble("main: li r1, 5\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt")
        b = ProgramBuilder()
        b.label("main").li(1, 5).label("loop").addi(1, 1, -1)
        b.bne(1, 0, "loop").halt()
        built = b.build()
        assert [str(i) for i in text.instructions] == [
            str(i) for i in built.instructions
        ]
