"""Tests for the set-associative and direct-mapped tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.tables import DirectMappedTable, SetAssociativeTable


class TestSetAssociativeTable:
    def test_miss_then_hit(self):
        t = SetAssociativeTable(16, 2)
        assert t.lookup(5) is None
        t.insert(5, "a")
        assert t.lookup(5) == "a"

    def test_replace_in_place(self):
        t = SetAssociativeTable(16, 2)
        t.insert(5, "a")
        assert t.insert(5, "b") is None  # no eviction reported
        assert t.lookup(5) == "b"
        assert t.occupancy() == 1

    def test_lru_eviction(self):
        t = SetAssociativeTable(16, 2)  # 8 sets
        a, b, c = 3, 3 + 8, 3 + 16     # same set (index = key % 8)
        t.insert(a, "a")
        t.insert(b, "b")
        t.lookup(a)                     # make "a" most recent
        evicted = t.insert(c, "c")
        assert evicted == "b"
        assert t.lookup(a) == "a"
        assert t.lookup(b) is None
        assert t.lookup(c) == "c"

    def test_direct_mapped_degenerate(self):
        t = SetAssociativeTable(4, 1)
        t.insert(1, "x")
        assert t.insert(5, "y") == "x"  # same set, 1 way

    def test_different_sets_dont_conflict(self):
        t = SetAssociativeTable(16, 2)
        for key in range(8):
            t.insert(key, key)
        assert t.occupancy() == 8
        for key in range(8):
            assert t.lookup(key) == key

    def test_get_or_insert(self):
        t = SetAssociativeTable(16, 2)
        entry, hit = t.get_or_insert(9, list)
        assert not hit and entry == []
        entry2, hit2 = t.get_or_insert(9, list)
        assert hit2 and entry2 is entry

    def test_invalidate(self):
        t = SetAssociativeTable(16, 2)
        t.insert(7, "z")
        assert t.invalidate(7)
        assert t.lookup(7) is None
        assert not t.invalidate(7)

    def test_clear(self):
        t = SetAssociativeTable(16, 2)
        for key in range(10):
            t.insert(key, key)
        t.clear()
        assert t.occupancy() == 0
        assert t.hits == 0 and t.misses == 0

    def test_iteration_yields_keys(self):
        t = SetAssociativeTable(16, 2)
        keys = {100, 205, 313}
        for key in keys:
            t.insert(key, key * 2)
        assert {k for k, _ in t} == keys
        assert all(v == k * 2 for k, v in t)

    def test_statistics(self):
        t = SetAssociativeTable(16, 2)
        t.lookup(1)
        t.insert(1, "a")
        t.lookup(1)
        assert t.misses == 1 and t.hits == 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeTable(12, 2)       # not a power of two
        with pytest.raises(ValueError):
            SetAssociativeTable(16, 3)       # ways doesn't divide
        with pytest.raises(ValueError):
            SetAssociativeTable(16, 0)

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(0, 500), st.integers()), max_size=150))
    def test_full_associative_matches_dict(self, ops):
        """A table with one set and many ways behaves like a bounded dict."""
        t = SetAssociativeTable(64, 64)
        model = {}
        for key, value in ops:
            t.insert(key, value)
            model[key] = value
            if len(model) <= 64:
                assert t.lookup(key) == model[key]

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 1000), max_size=200))
    def test_occupancy_bounded(self, keys):
        t = SetAssociativeTable(16, 4)
        for key in keys:
            t.insert(key, key)
        assert t.occupancy() <= 16


class TestDirectMappedTable:
    def test_lookup_empty(self):
        t = DirectMappedTable(8)
        assert t.lookup(3) is None

    def test_insert_lookup(self):
        t = DirectMappedTable(8)
        t.insert(3, "x")
        assert t.lookup(3) == "x"

    def test_aliasing(self):
        t = DirectMappedTable(8)
        t.insert(3, "x")
        assert t.lookup(11) == "x"  # 11 & 7 == 3: same slot

    def test_conflict_write_counted(self):
        t = DirectMappedTable(8)
        t.insert(3, "x")
        t.insert(11, "y")
        assert t.conflict_writes == 1
        assert t.lookup(3) == "y"

    def test_index_of(self):
        t = DirectMappedTable(8)
        assert t.index_of(0b10101) == 0b101

    def test_get_or_insert(self):
        t = DirectMappedTable(8)
        entry, existed = t.get_or_insert(2, dict)
        assert not existed
        entry2, existed2 = t.get_or_insert(2, dict)
        assert existed2 and entry2 is entry

    def test_clear_and_iter(self):
        t = DirectMappedTable(8)
        t.insert(1, "a")
        t.insert(2, "b")
        assert dict(iter(t)) == {1: "a", 2: "b"}
        t.clear()
        assert len(t) == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            DirectMappedTable(10)

    @given(st.lists(st.tuples(st.integers(0, 7), st.integers()), max_size=100))
    def test_matches_array_model(self, ops):
        t = DirectMappedTable(8)
        model = [None] * 8
        for key, value in ops:
            t.insert(key, value)
            model[key] = value
        for slot in range(8):
            assert t.lookup(slot) == model[slot]
