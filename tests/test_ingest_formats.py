"""Conformance corpus for the external-trace format adapters.

The fixtures live in ``tests/ingest_fixtures/``:

* ``golden/`` — well-formed DRAMSim2-style and Pin-style files covering
  every grammar affordance (comments, blank lines, case-insensitive
  commands, optional ``0x`` prefixes, decimal cells, cell padding);
* ``hostile/`` — one file per way a trace can be malformed, with the
  exact error message pinned in ``expectations.json``.  These messages
  are contract: vaguer wording (or a swallowed error) fails here first.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.ingest import (
    FORMAT_NAMES,
    FormatError,
    IngestError,
    IngestStats,
    get_format,
    read_path,
    records_to_trace,
    sniff_format,
    synthesize_pc,
)
from repro.ingest.records import KIND_FETCH, KIND_LOAD, KIND_STORE
from repro.trace import KIND_LOAD as TRACE_KIND_LOAD
from repro.trace import KIND_STORE as TRACE_KIND_STORE

FIXTURES = Path(__file__).parent / "ingest_fixtures"
GOLDEN = FIXTURES / "golden"
HOSTILE = FIXTURES / "hostile"
EXPECTATIONS = json.loads((FIXTURES / "expectations.json").read_text())


# ---------------------------------------------------------------------------
# Hostile corpus: every fixture fails with its pinned message
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_hostile_fixture_pinned_error(name):
    spec = EXPECTATIONS[name]
    with pytest.raises(FormatError) as excinfo:
        read_path(HOSTILE / name, spec["format"])
    assert str(excinfo.value) == spec["error"]


def test_hostile_corpus_is_complete():
    """Every hostile file has an expectation and vice versa."""
    on_disk = {p.name for p in HOSTILE.iterdir()}
    assert on_disk == set(EXPECTATIONS)


def test_format_error_is_value_error():
    """Typed errors stay catchable through the historical except clauses."""
    assert issubclass(FormatError, IngestError)
    assert issubclass(IngestError, ValueError)


def test_unknown_format_name_pinned():
    with pytest.raises(FormatError) as excinfo:
        get_format("elf")
    assert str(excinfo.value) == (
        "<trace>: unknown trace format 'elf'"
        " (expected one of: dramsim, pincsv)"
    )


# ---------------------------------------------------------------------------
# Golden corpus: grammar affordances parse to the expected records
# ---------------------------------------------------------------------------


def test_golden_dramsim_records():
    name, records = read_path(GOLDEN / "stride.trc", "dramsim")
    assert name == "dramsim"
    assert [(r.kind, r.addr, r.cycle) for r in records] == [
        (KIND_LOAD, 0x10000000, 0),
        (KIND_LOAD, 0x10000040, 10),   # lower-case command
        (KIND_STORE, 0x20000000, 20),
        (KIND_FETCH, 0x30000000, 30),
        (KIND_LOAD, 0x10000080, 40),   # no 0x prefix, P_MEM_RD spelling
        (KIND_STORE, 0x20000040, 50),  # P_MEM_WR spelling
        (KIND_LOAD, 2**64 - 1, 60),    # max-width mixed-case hex
    ]
    assert all(r.pc is None for r in records)


def test_golden_pincsv_records():
    name, records = read_path(GOLDEN / "mixed.csv", "pincsv")
    assert name == "pincsv"
    assert [(r.kind, r.pc, r.addr, r.size) for r in records] == [
        (KIND_LOAD, 0x401000, 0x7FFE0010, 8),
        (KIND_STORE, 0x401006, 0x7FFE0018, 4),  # padded cells
        (KIND_LOAD, 4198412, 2147483648, 2),    # decimal cells
        (KIND_LOAD, 0, 0x50000000, 4),          # pc=0 -> synthesized later
    ]


@pytest.mark.parametrize(
    "fixture, expected",
    [("stride.trc", "dramsim"), ("mixed.csv", "pincsv")],
)
def test_sniff_golden(fixture, expected):
    assert sniff_format((GOLDEN / fixture).read_bytes()) == expected


def test_sniff_skips_comments_and_blanks():
    data = b"# header comment\n\n  # another\n0x10 READ 0\n"
    assert sniff_format(data) == "dramsim"


def test_read_path_sniffs_when_format_omitted():
    name, records = read_path(GOLDEN / "mixed.csv")
    assert name == "pincsv"
    assert len(records) == 4


# ---------------------------------------------------------------------------
# Normalization: records -> Trace with provenance stats
# ---------------------------------------------------------------------------


def test_normalize_dramsim_drops_fetches_and_synthesizes_pcs():
    name, records = read_path(GOLDEN / "stride.trc", "dramsim")
    trace = records_to_trace(records, "golden_stride", format_name=name)
    stats = IngestStats(**trace.meta["ingest"])
    assert stats.format == "dramsim"
    assert stats.records == 7
    assert stats.events_kept == 6          # the P_FETCH is dropped
    assert stats.loads_kept == 4
    assert stats.dropped == {"fetch": 1}
    assert stats.synthesized_pcs == 6      # every kept record lacks a PC
    kinds = list(trace.kind)
    assert kinds.count(TRACE_KIND_LOAD) == 4
    assert kinds.count(TRACE_KIND_STORE) == 2
    assert list(trace.ip) == [
        synthesize_pc(a) for a in
        (0x10000000, 0x10000040, 0x20000000, 0x10000080, 0x20000040,
         2**64 - 1)
    ]


def test_normalize_pincsv_keeps_real_pcs():
    name, records = read_path(GOLDEN / "mixed.csv", "pincsv")
    trace = records_to_trace(records, "golden_mixed", format_name=name)
    stats = IngestStats(**trace.meta["ingest"])
    assert stats.records == 4
    assert stats.events_kept == 4
    assert stats.dropped == {}
    assert stats.synthesized_pcs == 1      # only the pc=0 row
    assert list(trace.ip) == [
        0x401000, 0x401006, 4198412, synthesize_pc(0x50000000)
    ]


def test_normalize_max_records_truncates_with_attribution():
    name, records = read_path(GOLDEN / "stride.trc", "dramsim")
    trace = records_to_trace(
        records, "golden_short", format_name=name, max_records=2
    )
    stats = IngestStats(**trace.meta["ingest"])
    assert stats.events_kept == 2
    assert stats.dropped["truncated"] == 5


def test_synthesized_pcs_are_stable_and_region_local():
    """Same 4 KiB region -> same PC; the correlation table keys on PC."""
    assert synthesize_pc(0x1000) == synthesize_pc(0x1FFF)
    assert synthesize_pc(0x1000) != synthesize_pc(0x2000)
    assert synthesize_pc(0x1000) == synthesize_pc(0x1000)


# ---------------------------------------------------------------------------
# Writers: canonical rendering (full round-trips in test_ingest_roundtrip)
# ---------------------------------------------------------------------------


def test_dramsim_writer_canonical_lines():
    _, records = read_path(GOLDEN / "stride.trc", "dramsim")
    rendered = get_format("dramsim").write(records)
    assert rendered.decode().splitlines()[:2] == [
        "0x10000000 READ 0",
        "0x10000040 READ 10",
    ]
    # Canonical output re-parses to the same records.
    assert get_format("dramsim").read(rendered) == records


def test_pincsv_writer_rejects_fetch_records():
    _, records = read_path(GOLDEN / "stride.trc", "dramsim")
    with pytest.raises(FormatError) as excinfo:
        get_format("pincsv").write(records)
    # Pins the full contract wording (R010 checks this fragment).
    assert "has no CSV representation (loads and stores only)" in str(
        excinfo.value
    )


def test_format_registry_is_stable():
    assert FORMAT_NAMES == ("dramsim", "pincsv")
