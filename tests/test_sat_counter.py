"""Tests for saturating and up/down counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.sat_counter import SaturatingCounter, UpDownCounter


class TestSaturatingCounter:
    def test_starts_unconfident(self):
        assert not SaturatingCounter(threshold=2).confident

    def test_confident_at_threshold(self):
        c = SaturatingCounter(threshold=2)
        c.update(True)
        assert not c.confident
        c.update(True)
        assert c.confident

    def test_reset_on_incorrect(self):
        c = SaturatingCounter(threshold=2)
        c.update(True)
        c.update(True)
        c.update(False)
        assert c.value == 0
        assert not c.confident

    def test_hysteresis_decrements(self):
        c = SaturatingCounter(threshold=2, maximum=3, hysteresis=True)
        for _ in range(3):
            c.update(True)
        c.update(False)
        assert c.value == 2
        assert c.confident  # survives one miss

    def test_saturates_at_maximum(self):
        c = SaturatingCounter(threshold=2, maximum=3)
        for _ in range(10):
            c.update(True)
        assert c.value == 3

    def test_default_maximum_is_threshold(self):
        c = SaturatingCounter(threshold=3)
        for _ in range(10):
            c.update(True)
        assert c.value == 3

    def test_hysteresis_floor_at_zero(self):
        c = SaturatingCounter(threshold=2, hysteresis=True)
        c.update(False)
        assert c.value == 0

    def test_snapshot_restore(self):
        c = SaturatingCounter(threshold=2)
        c.update(True)
        saved = c.snapshot()
        c.update(True)
        c.restore(saved)
        assert c.value == 1

    def test_restore_validates(self):
        c = SaturatingCounter(threshold=2)
        with pytest.raises(ValueError):
            c.restore(99)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SaturatingCounter(threshold=0)
        with pytest.raises(ValueError):
            SaturatingCounter(threshold=3, maximum=2)
        with pytest.raises(ValueError):
            SaturatingCounter(threshold=2, initial=5)

    @given(st.lists(st.booleans(), max_size=200))
    def test_value_stays_in_range(self, outcomes):
        c = SaturatingCounter(threshold=2, maximum=3, hysteresis=True)
        for outcome in outcomes:
            c.update(outcome)
            assert 0 <= c.value <= 3

    @given(st.lists(st.booleans(), max_size=100))
    def test_non_hysteresis_value_counts_run(self, outcomes):
        # Without hysteresis, value == min(max, length of trailing True run).
        c = SaturatingCounter(threshold=2, maximum=5)
        run = 0
        for outcome in outcomes:
            c.update(outcome)
            run = run + 1 if outcome else 0
            assert c.value == min(5, run)


class TestUpDownCounter:
    def test_initial_state(self):
        c = UpDownCounter(width=2, initial=2)
        assert c.favors_high

    def test_saturation(self):
        c = UpDownCounter(width=2, initial=3)
        c.up()
        assert c.value == 3
        c2 = UpDownCounter(width=2, initial=0)
        c2.down()
        assert c2.value == 0

    def test_crossing_midpoint(self):
        c = UpDownCounter(width=2, initial=1)
        assert not c.favors_high
        c.up()
        assert c.favors_high
        c.down()
        assert not c.favors_high

    def test_state_names(self):
        names = []
        c = UpDownCounter(width=2, initial=0)
        for _ in range(4):
            names.append(c.state_name("stride", "cap"))
            c.up()
        assert names == [
            "strong stride", "weak stride", "weak cap", "strong cap",
        ]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UpDownCounter(width=0)
        with pytest.raises(ValueError):
            UpDownCounter(width=2, initial=4)

    @given(st.lists(st.booleans(), max_size=200), st.integers(1, 4))
    def test_bounded(self, moves, width):
        c = UpDownCounter(width=width)
        for up in moves:
            c.up() if up else c.down()
            assert 0 <= c.value <= (1 << width) - 1
