"""Tests for the workload programs: they build, run, and produce the
address-pattern taxonomy they claim to."""

import pytest

from repro.eval.runner import run_predictor
from repro.predictors import CAPPredictor, LastAddressPredictor, StridePredictor
from repro.workloads import (
    ArraySumWorkload,
    BinaryTreeWorkload,
    BTreeLookupWorkload,
    CallPatternWorkload,
    CircuitWorkload,
    CopyWorkload,
    DesktopWorkload,
    DoubleLinkedListWorkload,
    GameWorkload,
    HashJoinWorkload,
    HashTableWorkload,
    HistogramWorkload,
    IndexListWorkload,
    JavaJITWorkload,
    LinkedListWorkload,
    ListEvalWorkload,
    LongChainWorkload,
    MatMulWorkload,
    RandomAccessWorkload,
    SaxpyWorkload,
    StencilWorkload,
    TableScanWorkload,
    Workload,
    trace_workload,
)

ALL_WORKLOADS = [
    LinkedListWorkload, DoubleLinkedListWorkload, IndexListWorkload,
    BinaryTreeWorkload, CallPatternWorkload, ListEvalWorkload,
    ArraySumWorkload, SaxpyWorkload, StencilWorkload, HistogramWorkload,
    CopyWorkload, MatMulWorkload, HashTableWorkload, RandomAccessWorkload,
    LongChainWorkload, JavaJITWorkload, BTreeLookupWorkload,
    TableScanWorkload, HashJoinWorkload, DesktopWorkload, GameWorkload,
    CircuitWorkload,
]


@pytest.mark.parametrize("cls", ALL_WORKLOADS)
class TestEveryWorkload:
    def test_builds_and_runs(self, cls):
        trace = trace_workload(cls(seed=3), max_instructions=4000)
        summary = trace.summary()
        assert summary.instructions == 4000          # loops forever
        assert summary.loads > 0
        assert 0.05 < summary.load_fraction < 0.8

    def test_deterministic(self, cls):
        t1 = trace_workload(cls(seed=5), max_instructions=2000)
        t2 = trace_workload(cls(seed=5), max_instructions=2000)
        assert t1.addr == t2.addr and t1.ip == t2.ip

    def test_seed_changes_layout(self, cls):
        if cls in (ArraySumWorkload, SaxpyWorkload, StencilWorkload,
                   CopyWorkload, MatMulWorkload):
            # Pure-array kernels: addresses are layout-fixed, the seed only
            # varies data contents, which a trace does not record.
            pytest.skip("array layout is seed-independent by design")
        t1 = trace_workload(cls(seed=1), max_instructions=2000)
        t2 = trace_workload(cls(seed=2), max_instructions=2000)
        # Same code shape, different data layout/content.
        assert t1.addr != t2.addr


def rate(predictor, trace):
    return run_predictor(predictor, trace.predictor_stream()).prediction_rate


class TestPatternTaxonomy:
    """Each workload family must defeat / favour the right predictor."""

    def test_linked_list_defeats_stride_not_cap(self):
        trace = trace_workload(
            LinkedListWorkload(seed=3, via_global_ptr=False),
            max_instructions=30_000,
        )
        assert rate(StridePredictor(), trace) < 0.15
        assert rate(CAPPredictor(), trace) > 0.8

    def test_array_favours_stride_defeats_last(self):
        trace = trace_workload(ArraySumWorkload(seed=3), max_instructions=30_000)
        assert rate(StridePredictor(), trace) > 0.9
        assert rate(LastAddressPredictor(), trace) < 0.05

    def test_double_list_needs_history_two(self):
        """The val load is direction-ambiguous: history 1 cannot nail it."""
        from repro.predictors import CAPConfig

        trace = trace_workload(
            DoubleLinkedListWorkload(seed=3), max_instructions=40_000,
        )
        short = run_predictor(
            CAPPredictor(CAPConfig(history_length=1)), trace.predictor_stream()
        )
        long = run_predictor(
            CAPPredictor(CAPConfig(history_length=3)), trace.predictor_stream()
        )
        assert long.correct_rate > short.correct_rate

    def test_call_pattern_is_control_correlated(self):
        trace = trace_workload(CallPatternWorkload(seed=3), max_instructions=40_000)
        # Stride-hopeless on the struct-field loads, CAP-friendly.
        assert rate(CAPPredictor(), trace) > rate(StridePredictor(), trace) + 0.1

    def test_random_access_defeats_everyone(self):
        trace = trace_workload(RandomAccessWorkload(seed=3), max_instructions=30_000)
        assert rate(CAPPredictor(), trace) < 0.1
        assert rate(StridePredictor(), trace) < 0.1

    def test_long_chain_does_not_pollute_but_is_unpredictable(self):
        trace = trace_workload(LongChainWorkload(seed=3), max_instructions=30_000)
        predictor = CAPPredictor()
        metrics = run_predictor(predictor, trace.predictor_stream())
        assert metrics.prediction_rate < 0.2
        # PF bits kept most of the ring out of the LT.
        assert predictor.component.link_table.pf_rejections > 0

    def test_desktop_is_last_address_friendly(self):
        trace = trace_workload(
            DesktopWorkload(seed=3, handlers=16, loads_per_handler=8,
                            queue_len=20),
            max_instructions=40_000,
        )
        assert rate(LastAddressPredictor(), trace) > 0.4

    def test_java_jit_is_memory_heavy(self):
        trace = trace_workload(JavaJITWorkload(seed=3), max_instructions=20_000)
        summary = trace.summary()
        assert summary.load_fraction + summary.stores / summary.instructions > 0.4


class TestWorkloadValidation:
    def test_linked_list_length_check(self):
        with pytest.raises(ValueError):
            LinkedListWorkload(length=0)

    def test_tree_node_check(self):
        with pytest.raises(ValueError):
            BinaryTreeWorkload(nodes=0)

    def test_hash_table_bucket_check(self):
        with pytest.raises(ValueError):
            HashTableWorkload(buckets=100)

    def test_index_list_capacity_check(self):
        with pytest.raises(ValueError):
            IndexListWorkload(length=64, capacity=64)

    def test_base_workload_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Workload("x").build()
