"""Tests for the last-address predictor."""

from repro.predictors import LastAddressConfig, LastAddressPredictor


def drive(predictor, ip, addresses, offset=0):
    """Feed a sequence; return (speculative, correct) counts."""
    spec = correct = 0
    for addr in addresses:
        p = predictor.predict(ip, offset)
        if p.speculative:
            spec += 1
            if p.address == addr:
                correct += 1
        predictor.update(ip, offset, addr, p)
    return spec, correct


class TestLastAddress:
    def test_first_encounter_no_prediction(self):
        p = LastAddressPredictor()
        assert not p.predict(0x100, 0).made

    def test_learns_constant(self):
        p = LastAddressPredictor()
        spec, correct = drive(p, 0x100, [0x2000] * 10)
        # Threshold 2: speculation starts on the 4th instance.
        assert spec == 7
        assert correct == 7

    def test_never_speculates_on_changing_addresses(self):
        p = LastAddressPredictor()
        spec, _ = drive(p, 0x100, [0x2000 + 4 * i for i in range(20)])
        assert spec == 0

    def test_confidence_resets_on_change(self):
        p = LastAddressPredictor()
        drive(p, 0x100, [0x2000] * 5)
        drive(p, 0x100, [0x3000])          # change resets confidence
        pred = p.predict(0x100, 0)
        assert pred.address == 0x3000
        assert not pred.speculative

    def test_independent_static_loads(self):
        p = LastAddressPredictor()
        drive(p, 0x100, [0x2000] * 5)
        drive(p, 0x200, [0x3000] * 5)
        assert p.predict(0x100, 0).address == 0x2000
        assert p.predict(0x200, 0).address == 0x3000

    def test_threshold_configurable(self):
        p = LastAddressPredictor(LastAddressConfig(confidence_threshold=3))
        spec, _ = drive(p, 0x100, [0x2000] * 6)
        assert spec == 2  # speculation starts at the 5th instance

    def test_reset_clears_state(self):
        p = LastAddressPredictor()
        drive(p, 0x100, [0x2000] * 5)
        p.reset()
        assert not p.predict(0x100, 0).made

    def test_table_contention_evicts(self):
        p = LastAddressPredictor(LastAddressConfig(entries=4, ways=1))
        for ip in range(0x100, 0x100 + 4 * 64, 4):
            drive(p, ip, [0x2000] * 1)
        # With only 4 slots, early IPs are long gone.
        assert not p.predict(0x100, 0).made

    def test_name(self):
        assert LastAddressPredictor().name == "last-address"
