"""Tests for evaluation metrics, aggregation and the runner."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import Distribution, RateCounter, geometric_mean, weighted_mean
from repro.eval.metrics import (
    AttributionCounters,
    PredictorMetrics,
    SuiteMetrics,
    aggregate_by_suite,
)
from repro.serve.session import run_on_columns, run_on_stream, run_predictor
from repro.predictors import LastAddressPredictor
from repro.predictors.base import AddressPredictor, Prediction
from repro.trace.trace import PredictorStream


class TestPredictorMetrics:
    def test_rates(self):
        m = PredictorMetrics()
        m.record(made=True, speculative=True, correct=True)
        m.record(made=True, speculative=True, correct=False)
        m.record(made=True, speculative=False, correct=True)
        m.record(made=False, speculative=False, correct=False)
        assert m.loads == 4
        assert m.prediction_rate == pytest.approx(0.5)
        assert m.accuracy == pytest.approx(0.5)
        assert m.misprediction_rate == pytest.approx(0.5)
        assert m.correct_rate == pytest.approx(0.25)
        assert m.coverage == pytest.approx(0.75)
        assert m.mispredictions == 1

    def test_empty_metrics_safe(self):
        m = PredictorMetrics()
        assert m.prediction_rate == 0.0
        assert m.accuracy == 0.0
        assert m.correct_rate == 0.0

    def test_add_combines_counters(self):
        a = PredictorMetrics(loads=10, speculative=5, correct_speculative=4)
        b = PredictorMetrics(loads=10, speculative=1, correct_speculative=1)
        a.add(b)
        assert a.loads == 20
        assert a.prediction_rate == pytest.approx(0.3)

    def test_iadd_merges_in_place(self):
        a = PredictorMetrics(name="p", loads=10, speculative=5,
                             correct_speculative=4)
        b = PredictorMetrics(loads=2, speculative=2, correct_speculative=1)
        merged = a
        merged += b
        assert merged is a
        assert a.loads == 12
        assert a.correct_speculative == 5
        assert a.name == "p"  # labels never merge

    def test_zero_loads_rates_are_zero(self):
        m = PredictorMetrics(speculative=0, loads=0)
        assert m.prediction_rate == 0.0
        assert m.accuracy == 0.0
        assert m.misprediction_rate == 0.0
        assert m.correct_rate == 0.0
        assert m.coverage == 0.0

    def test_add_accepts_plain_metrics_into_attribution(self):
        rich = AttributionCounters(loads=5, lb_misses=3)
        rich.add(PredictorMetrics(loads=2))
        assert rich.loads == 7
        assert rich.lb_misses == 3  # missing counters contribute zero

    @given(st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()),
                    max_size=200))
    def test_invariants(self, events):
        m = PredictorMetrics()
        for made, spec, correct in events:
            m.record(made=made or spec, speculative=spec, correct=correct)
        assert 0 <= m.correct_speculative <= m.speculative <= m.loads
        assert 0.0 <= m.prediction_rate <= 1.0
        if m.speculative:
            assert 0.0 <= m.accuracy <= 1.0


class TestAggregation:
    def test_groups_by_suite(self):
        runs = [
            PredictorMetrics(name="p", trace="a", suite="INT",
                             loads=100, speculative=50, correct_speculative=49),
            PredictorMetrics(name="p", trace="b", suite="INT",
                             loads=100, speculative=70, correct_speculative=70),
            PredictorMetrics(name="p", trace="c", suite="MM",
                             loads=100, speculative=90, correct_speculative=90),
        ]
        suites = aggregate_by_suite(runs)
        assert suites["INT"].combined.speculative == 120
        assert suites["MM"].combined.loads == 100
        assert suites["Average"].combined.loads == 300

    def test_average_is_load_weighted(self):
        runs = [
            PredictorMetrics(trace="a", suite="X", loads=300, speculative=300,
                             correct_speculative=300),
            PredictorMetrics(trace="b", suite="Y", loads=100, speculative=0),
        ]
        avg = aggregate_by_suite(runs)["Average"].combined
        assert avg.prediction_rate == pytest.approx(0.75)

    def test_combined_upgrades_to_attribution_counters(self):
        suite = SuiteMetrics(suite="INT")
        suite.add(PredictorMetrics(trace="a", suite="INT", loads=10))
        suite.add(AttributionCounters(trace="b", suite="INT", loads=5,
                                      lb_misses=2))
        assert isinstance(suite.combined, AttributionCounters)
        assert suite.combined.loads == 15
        assert suite.combined.lb_misses == 2

    def test_suite_iadd_merges_traces(self):
        left = SuiteMetrics(suite="INT")
        left.add(PredictorMetrics(trace="a", suite="INT", loads=10))
        right = SuiteMetrics(suite="INT")
        right.add(PredictorMetrics(trace="b", suite="INT", loads=7))
        left += right
        assert set(left.traces) == {"a", "b"}
        assert left.combined.loads == 17


class TestStatsHelpers:
    def test_rate_counter(self):
        r = RateCounter()
        r.record(True)
        r.record(False)
        assert r.rate == pytest.approx(0.5)
        r2 = RateCounter()
        r2.add(r)
        assert r2.total == 2

    def test_distribution(self):
        d = Distribution()
        d.record("a", 3)
        d.record("b")
        assert d.fraction("a") == pytest.approx(0.75)
        assert d.fractions()["b"] == pytest.approx(0.25)

    def test_weighted_mean(self):
        assert weighted_mean([(1.0, 1), (3.0, 1)]) == pytest.approx(2.0)
        assert weighted_mean([(1.0, 3), (5.0, 1)]) == pytest.approx(2.0)
        assert weighted_mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class _ScriptedPredictor(AddressPredictor):
    """Predicts a fixed address for every load; counts notifications."""

    def __init__(self, address):
        super().__init__()
        self.address = address
        self.branches = []
        self.calls = []
        self.updates = 0

    def predict(self, ip, offset):
        return Prediction(address=self.address, speculative=True)

    def update(self, ip, offset, actual, prediction):
        self.updates += 1

    def on_branch(self, ip, taken):
        super().on_branch(ip, taken)
        self.branches.append((ip, taken))

    def on_call(self, ip):
        self.calls.append(ip)


class TestRunner:
    def test_counts_loads_and_correctness(self):
        stream = [
            (1, 0x100, 0x2000, 0),
            (1, 0x100, 0x3000, 0),
            (0, 0x200, 1, 0),
            (1, 0x100, 0x2000, 0),
        ]
        p = _ScriptedPredictor(0x2000)
        metrics = run_predictor(p, stream)
        assert metrics.loads == 3
        assert metrics.speculative == 3
        assert metrics.correct_speculative == 2
        assert p.updates == 3
        assert p.branches == [(0x200, True)]

    def test_warmup_excluded_from_metrics(self):
        stream = [(1, 0x100, 0x2000, 0)] * 10
        p = _ScriptedPredictor(0x2000)
        metrics = PredictorMetrics()
        run_on_stream(p, stream, metrics, warmup_loads=6)
        assert metrics.loads == 4
        assert p.updates == 10  # training still happens during warmup

    def test_calls_and_returns_forwarded(self):
        stream = [(2, 0x300, 0, 0), (3, 0x304, 0, 0)]
        p = _ScriptedPredictor(0)
        run_predictor(p, stream)
        assert p.calls == [0x300]

    def test_trace_object_accepted(self):
        from repro.trace.trace import Trace

        t = Trace("x", meta={"suite": "INT"})
        t.append(1, 0x100, addr=0x2000, offset=4)
        metrics = run_predictor(LastAddressPredictor(), t)
        assert metrics.trace == "x"
        assert metrics.suite == "INT"
        assert metrics.loads == 1

    def test_instrumented_run_returns_attribution_counters(self):
        stream = [(1, 0x100, 0x2000 + 8 * i, 0) for i in range(20)]
        metrics = run_predictor(
            LastAddressPredictor(), stream, instrument=True
        )
        assert isinstance(metrics, AttributionCounters)
        assert metrics.loads == 20


class TestObserverParity:
    """The observer hook must fire identically on both evaluation paths."""

    #: mixed stream: loads, a branch, a call and a return interleaved
    EVENTS = [
        (1, 0x100, 0x2000, 4),
        (0, 0x200, 1, 0),
        (1, 0x104, 0x2008, 4),
        (2, 0x300, 0, 0),
        (1, 0x100, 0x2010, 4),
        (0, 0x200, 0, 0),
        (3, 0x304, 0, 0),
        (1, 0x104, 0x2018, 4),
    ]

    def _drive(self, runner, stream):
        calls = []
        predictor = LastAddressPredictor()
        runner(
            predictor, stream, PredictorMetrics(),
            observer=lambda ip, b, a, prediction: calls.append(
                (ip, b, a, prediction.made, prediction.address)
            ),
        )
        return calls

    def test_identical_call_sequences(self):
        columns = PredictorStream(
            tag=[e[0] for e in self.EVENTS],
            ip=[e[1] for e in self.EVENTS],
            a=[e[2] for e in self.EVENTS],
            b=[e[3] for e in self.EVENTS],
            loads=sum(1 for e in self.EVENTS if e[0] == 1),
        )
        via_stream = self._drive(run_on_stream, list(self.EVENTS))
        via_columns = self._drive(run_on_columns, columns)
        assert via_stream == via_columns
        assert len(via_stream) == 4  # one call per dynamic load only

    def test_observer_sees_prediction_before_update(self):
        stream = [(1, 0x100, 0x2000, 0), (1, 0x100, 0x2000, 0)]
        seen = []
        run_on_stream(
            LastAddressPredictor(), stream, PredictorMetrics(),
            observer=lambda ip, b, a, p: seen.append(p.made),
        )
        # First load: table is still empty at observation time.
        assert seen == [False, True]
