"""Admin endpoint end-to-end: scrape, trace join, timeout postmortems.

Same conventions as ``test_serve_server.py``: plain ``asyncio.run``
inside synchronous tests, ephemeral ports everywhere.  The blocking
``fetch_admin`` client runs in a worker thread via ``asyncio.to_thread``
so it exercises the real socket path against the live listener.
"""

import asyncio
import json
import threading

import pytest

from repro.eval.metrics import PredictorMetrics
from repro.obs.admin import AdminServer, fetch_admin
from repro.obs.flight import validate_postmortem
from repro.obs.metrics import global_registry
from repro.obs.tracing import validate_trace_export
from repro.serve import protocol
from repro.serve import server as server_mod
from repro.serve.server import PredictionServer, ServeConfig
from repro.verify.fuzz import generate_events

EVENTS = [tuple(e) for e in generate_events("mixed", 0, 200)]


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Server instruments resolve from the process-global registry."""
    global_registry().reset()
    yield
    global_registry().reset()


class _Client:
    def __init__(self, port):
        self.port = port
        self.frames = protocol.FrameReader()

    async def connect(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        return self

    async def rpc(self, frame):
        self.writer.write(frame)
        await self.writer.drain()
        while True:
            data = await self.reader.read(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            for _kind, payload in self.frames.push(data):
                return protocol.decode_json(payload)

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _open_msg(**extra):
    return protocol.encode_json(
        {"type": "open", "factory": "stride", **extra}
    )


async def _start(config):
    server = PredictionServer(config)
    await server.start()
    return server


async def _scrape(port, request):
    return await asyncio.to_thread(fetch_admin, "127.0.0.1", port, request)


class _BlockingSession:
    """Stub whose ``feed`` blocks until released (timeout tests)."""

    instances = []
    backend = "python"

    def __init__(self, config, session_id=""):
        self.config = config
        self.session_id = session_id
        self.release = threading.Event()
        self.metrics = PredictorMetrics(name="stub", suite="serve")
        _BlockingSession.instances.append(self)

    def feed(self, events, observer=None):
        assert self.release.wait(10), "test never released the stub"
        return []

    def finish(self):
        return self.metrics


class TestAdminServerUnit:
    def test_unknown_request_answers_error(self):
        async def scenario():
            async def body():
                return {"ok": True}

            admin = AdminServer(health=body, metrics=body, spans=body)
            await admin.start()
            try:
                reply = await _scrape(admin.port, "bogus")
                assert reply["type"] == "error"
                assert reply["code"] == "admin"
                reply = await _scrape(admin.port, "health")
                assert reply == {"type": "health", "ok": True}
            finally:
                await admin.close()

        asyncio.run(scenario())

    def test_close_is_idempotent(self):
        async def scenario():
            async def body():
                return {}

            admin = AdminServer(health=body, metrics=body, spans=body)
            await admin.start()
            await admin.close()
            await admin.close()

        asyncio.run(scenario())


class TestAdminEndToEnd:
    def test_scrape_joins_client_trace_ids(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")

        async def scenario():
            server = await _start(ServeConfig(port=0, admin_port=0))
            assert server.admin_port is not None
            client = await _Client(server.port).connect()
            opened = await client.rpc(_open_msg(trace="lg0-7"))
            assert opened["type"] == "opened"
            assert opened["trace"] == "lg0-7"  # client-supplied id wins
            for _ in range(3):
                reply = await client.rpc(protocol.encode_events(EVENTS))
                assert reply["type"] == "predictions"
            finish = await client.rpc(
                protocol.encode_json({"type": "finish"})
            )
            assert finish["type"] == "metrics"

            health = await _scrape(server.admin_port, "health")
            assert health["status"] == "ok"
            assert health["stats"]["sessions_finished"] == 1

            answer = await _scrape(server.admin_port, "metrics")
            metrics = answer["metrics"]
            assert metrics["counters"]["serve.sessions.dropped"] == 0
            wait = metrics["histograms"]["serve.queue.wait_s"]
            assert wait["count"] == 3
            occupancy = metrics["histograms"]["serve.batch.occupancy"]
            assert occupancy["count"] >= 1

            spans = await _scrape(server.admin_port, "spans")
            document = {
                "displayTimeUnit": spans["displayTimeUnit"],
                "traceEvents": spans["traceEvents"],
            }
            assert validate_trace_export(document) == []
            waits = [
                e for e in document["traceEvents"]
                if e["name"] == "serve.feed.queue_wait"
            ]
            assert len(waits) == 3
            assert all(e["args"]["trace"] == "lg0-7" for e in waits)
            assert any(
                e["name"] == "serve.batch.exec"
                for e in document["traceEvents"]
            )
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())

    def test_server_without_admin_has_no_port(self):
        async def scenario():
            server = await _start(ServeConfig(port=0))
            assert server.admin_port is None
            await server.shutdown()

        asyncio.run(scenario())

    def test_sharded_scrape_merges_worker_snapshots(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")

        async def scenario():
            server = await _start(
                ServeConfig(port=0, shards=1, admin_port=0)
            )
            client = await _Client(server.port).connect()
            opened = await client.rpc(_open_msg())
            assert opened["type"] == "opened"
            assert opened["shard"] == 0
            reply = await client.rpc(protocol.encode_events(EVENTS))
            assert reply["type"] == "predictions"
            finish = await client.rpc(
                protocol.encode_json({"type": "finish"})
            )
            assert finish["type"] == "metrics"

            answer = await _scrape(server.admin_port, "metrics")
            metrics = answer["metrics"]
            # Scrape-time per-shard occupancy gauge from the manager...
            assert "serve.shard.0.in_flight" in metrics["gauges"]
            # ...plus counters only the worker process records: the
            # kernel dispatch tallies from the session's feed.
            assert any(
                name.startswith("kernels.")
                for name in metrics["counters"]
            ), metrics["counters"]
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())


class TestTimeoutPostmortem:
    def test_timed_out_session_dumps_postmortem(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            server_mod, "PredictorSession", _BlockingSession
        )
        monkeypatch.setattr(_BlockingSession, "instances", [])

        async def scenario():
            server = await _start(ServeConfig(
                port=0,
                session_timeout_s=0.2,
                flight_dir=str(tmp_path),
                admin_port=0,
            ))
            client = await _Client(server.port).connect()
            opened = await client.rpc(_open_msg(trace="pm-1"))
            assert opened["type"] == "opened"
            reply = await client.rpc(protocol.encode_events(EVENTS))
            assert reply["type"] == "error"
            assert reply["code"] == "timeout"
            for stub in _BlockingSession.instances:
                stub.release.set()
            await client.close()
            await server.shutdown()
            return opened["session"]

        session_id = asyncio.run(scenario())
        (path,) = tmp_path.glob("postmortem-*.json")
        assert path.name == f"postmortem-{session_id}-timeout.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        assert validate_postmortem(document) == []
        assert document["reason"] == "timeout"
        kinds = [e["kind"] for e in document["events"]]
        assert kinds[0] == "open"
        assert "feed.timeout" in kinds
        assert document["context"]["trace"] == "pm-1"

    def test_clean_finish_leaves_no_postmortem(self, tmp_path):
        async def scenario():
            server = await _start(ServeConfig(
                port=0, flight_dir=str(tmp_path)
            ))
            client = await _Client(server.port).connect()
            assert (await client.rpc(_open_msg()))["type"] == "opened"
            reply = await client.rpc(protocol.encode_events(EVENTS))
            assert reply["type"] == "predictions"
            finish = await client.rpc(
                protocol.encode_json({"type": "finish"})
            )
            assert finish["type"] == "metrics"
            assert len(server.flight) == 0  # ring freed on clean finish
            await client.close()
            await server.shutdown()

        asyncio.run(scenario())
