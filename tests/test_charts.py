"""Tests for the ASCII chart renderers."""

import pytest

from repro.eval.charts import bar_chart, grouped_bar_chart, series_chart


class TestBarChart:
    def test_single_series(self):
        text = bar_chart({"a": 0.5, "b": 1.0}, width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10       # max value fills the width
        assert lines[0].count("#") == 5

    def test_formatter(self):
        text = bar_chart({"x": 2.0}, formatter=lambda v: f"{v:.1f}x")
        assert "2.0x" in text

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="T").splitlines()[0] == "T"

    def test_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "0.0%" in text


class TestGroupedBarChart:
    def test_groups_and_fills(self):
        text = grouped_bar_chart(
            ["g1", "g2"],
            {"s1": [0.5, 1.0], "s2": [0.25, 0.75]},
            width=8,
        )
        assert "#" in text and "=" in text      # distinct fills per series
        assert "g1" in text and "g2" in text
        assert "s1" in text and "s2" in text

    def test_shared_scale(self):
        text = grouped_bar_chart(
            ["a", "b"], {"s": [0.5, 1.0]}, width=20,
        )
        lines = text.splitlines()
        assert lines[1].count("#") == 20
        assert lines[0].count("#") == 10

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]})

    def test_blank_line_between_groups(self):
        text = grouped_bar_chart(
            ["a", "b"], {"s1": [1, 1], "s2": [1, 1]},
        )
        assert "" in text.splitlines()

    def test_no_trailing_blank(self):
        text = grouped_bar_chart(["a"], {"s1": [1], "s2": [1]})
        assert not text.endswith("\n")
        assert text.splitlines()[-1].strip()

    def test_empty(self):
        assert grouped_bar_chart([], {}) == ""


class TestSeriesChart:
    def test_alias_of_grouped(self):
        a = series_chart(["1", "2"], {"s": [0.1, 0.2]})
        b = grouped_bar_chart(["1", "2"], {"s": [0.1, 0.2]})
        assert a == b


class TestResultIntegration:
    def test_suite_comparison_chart(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        from repro.eval import experiments as E

        result = E.baselines(traces=["INT_xli"], instructions=5000)
        chart = result.render_chart(width=20)
        assert "INT" in chart and "|" in chart

    def test_history_chart(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        from repro.eval import experiments as E

        result = E.fig9(traces=["INT_xli"], instructions=5000, lengths=[1, 2])
        chart = result.render_chart()
        assert "global correlation" in chart
