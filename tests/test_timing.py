"""Tests for the cache model and the out-of-order timing model."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.cpu import CPU
from repro.isa.memory import Memory
from repro.predictors import HybridPredictor, StridePredictor
from repro.timing import (
    CacheConfig,
    CacheHierarchy,
    CacheLevel,
    MachineConfig,
    PrefetchConfig,
    StridePrefetcher,
    TimingResult,
    simulate,
    speedup,
)
from repro.trace.trace import Trace
from repro.workloads import LinkedListWorkload, trace_workload


class TestCacheLevel:
    def test_first_access_misses(self):
        c = CacheLevel(CacheConfig(size_bytes=1024, line_bytes=32, ways=2))
        assert not c.access(0x1000)
        assert c.access(0x1000)

    def test_same_line_hits(self):
        c = CacheLevel(CacheConfig(size_bytes=1024, line_bytes=32, ways=2))
        c.access(0x1000)
        assert c.access(0x101C)  # same 32-byte line

    def test_lru_within_set(self):
        c = CacheLevel(CacheConfig(size_bytes=128, line_bytes=32, ways=2))
        # 2 sets; lines mapping to set 0: 0x000, 0x040, 0x080...
        c.access(0x000)
        c.access(0x040)
        c.access(0x000)          # refresh
        c.access(0x080)          # evicts 0x040
        assert c.access(0x000)
        assert not c.access(0x040)

    def test_hit_rate(self):
        c = CacheLevel(CacheConfig())
        c.access(0)
        c.access(0)
        assert c.hit_rate == pytest.approx(0.5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, line_bytes=32, ways=3)


class TestCacheHierarchy:
    def test_latencies(self):
        h = CacheHierarchy(l1_latency=3, l2_latency=12, memory_latency=60)
        assert h.access(0x5000) == 60          # cold: memory
        assert h.access(0x5000) == 3           # now L1
        # Evict from a tiny L1 but not L2: emulate with many lines.
        h2 = CacheHierarchy(
            l1=CacheConfig(size_bytes=128, line_bytes=32, ways=1),
            l1_latency=3, l2_latency=12, memory_latency=60,
        )
        h2.access(0x0)
        for addr in range(0x1000, 0x3000, 32):
            h2.access(addr)
        assert h2.access(0x0) == 12            # L1 victim, L2 hit


class TestStridePrefetcher:
    def _hierarchy(self):
        return CacheHierarchy(l1_latency=3, l2_latency=12, memory_latency=60)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            PrefetchConfig(degree=0)

    def test_untrained_load_issues_nothing(self):
        pf = StridePrefetcher()
        pf.observe(0x1000, 0x8000, self._hierarchy())
        assert pf.issued == 0

    def test_confident_stride_prefetches_next_lines(self):
        caches = self._hierarchy()
        pf = StridePrefetcher(PrefetchConfig(confidence_threshold=2))
        addrs = [0x8000 + 256 * i for i in range(8)]
        for addr in addrs:
            pf.observe(0x1000, addr, caches)
        assert pf.issued > 0
        # The next strided line was touched ahead of time: an L1 hit now.
        assert caches.access(addrs[-1] + 256) == 3

    def test_zero_stride_issues_nothing(self):
        caches = self._hierarchy()
        pf = StridePrefetcher()
        for _ in range(10):
            pf.observe(0x1000, 0x8000, caches)
        assert pf.issued == 0

    def test_degree_scales_issue_count(self):
        def issued_with(degree):
            caches = self._hierarchy()
            pf = StridePrefetcher(
                PrefetchConfig(degree=degree, confidence_threshold=2)
            )
            for i in range(12):
                pf.observe(0x1000, 0x8000 + 64 * i, caches)
            return pf.issued

        assert issued_with(4) == 4 * issued_with(1)

    def test_prefetch_uses_learned_stride_not_blip(self):
        """A single irregular access must not redirect the prefetch."""
        caches = self._hierarchy()
        pf = StridePrefetcher(PrefetchConfig(confidence_threshold=2))
        for i in range(8):
            pf.observe(0x1000, 0x8000 + 256 * i, caches)
        before = pf.issued
        # The blip itself arrives while the old stride is still confident:
        # whatever is issued extends from the blip address by the *learned*
        # stride (issue happens before training sees the new delta).
        pf.observe(0x1000, 0x20000, caches)
        if pf.issued > before:
            assert caches.access(0x20000 + 256) == 3

    def test_separate_ips_train_independently(self):
        caches = self._hierarchy()
        pf = StridePrefetcher(PrefetchConfig(confidence_threshold=2))
        for i in range(8):
            pf.observe(0x1000, 0x8000 + 128 * i, caches)
            pf.observe(0x2000, 0x40000 - 128 * i, caches)
        assert caches.access(0x8000 + 128 * 8) == 3     # up-stride IP
        assert caches.access(0x40000 - 128 * 8) == 3    # down-stride IP


def make_dependent_chain_trace(n, latency_kind=1):
    """n loads, each address depending on the previous load's result."""
    t = Trace("chain")
    for i in range(n):
        t.append(latency_kind, 0x1000, addr=0x2000 + 64 * i, offset=0,
                 dst=1, src1=1)
    return t


def make_independent_alu_trace(n):
    t = Trace("alu")
    for i in range(n):
        t.append(0, 0x1000 + 4 * i, dst=(i % 8) + 1)
    return t


class TestTimingModel:
    def test_wide_independent_code_reaches_width(self):
        trace = make_independent_alu_trace(8000)
        result = simulate(trace, config=MachineConfig(width=8, window=128))
        assert result.ipc > 6.0

    def test_dependent_loads_serialise(self):
        trace = make_dependent_chain_trace(500)
        result = simulate(trace)
        # Each load takes at least l1_latency on the critical path.
        assert result.cycles >= 500 * 3 * 0.8

    def test_width_one_bounds_ipc(self):
        trace = make_independent_alu_trace(1000)
        result = simulate(trace, config=MachineConfig(width=1, window=32))
        assert result.ipc <= 1.01

    def test_correct_prediction_speeds_up_pointer_chase(self):
        workload = LinkedListWorkload(seed=3, via_global_ptr=False, length=16)
        trace = trace_workload(workload, max_instructions=30_000)
        base = simulate(trace)
        pred = simulate(trace, HybridPredictor())
        assert speedup(base, pred) > 1.2

    def test_stride_prediction_modest_on_arrays(self):
        """Stride code pipelines anyway; prediction gains little (paper §2)."""
        from repro.workloads import ArraySumWorkload

        trace = trace_workload(ArraySumWorkload(seed=3), max_instructions=30_000)
        base = simulate(trace)
        pred = simulate(trace, StridePredictor())
        s = speedup(base, pred)
        assert 0.98 < s < 1.3

    def test_result_counters(self):
        workload = LinkedListWorkload(seed=3)
        trace = trace_workload(workload, max_instructions=10_000)
        result = simulate(trace, HybridPredictor())
        assert result.loads == trace.summary().loads
        assert result.speculative_correct + result.speculative_wrong <= result.loads
        assert 0 <= result.l1_hit_rate <= 1

    def test_branch_mispredicts_cost_cycles(self):
        import random

        rng = random.Random(3)
        predictable = Trace("p")
        noisy = Trace("n")
        for i in range(4000):
            predictable.append(3, 0x1000, taken=1)
            noisy.append(3, 0x1000, taken=rng.randrange(2))
        fast = simulate(predictable)
        slow = simulate(noisy)
        assert slow.cycles > fast.cycles * 1.5

    def test_store_to_load_forwarding_binds(self):
        """A pop right after a push must wait for the push's data."""
        t = Trace("sf")
        for i in range(600):
            t.append(2, 0x1000, addr=0x7000, dst=-1, src1=1, src2=2)  # store
            t.append(1, 0x1004, addr=0x7000, dst=3, src1=15)          # load
            t.append(0, 0x1008, dst=1, src1=3)                        # use
        bound = simulate(t)
        # The chain store->load->alu->store... enforces ~2+ cycles per trio.
        assert bound.cycles > 600 * 2

    def test_speedup_zero_cycles_guarded(self):
        with pytest.raises(ValueError):
            speedup(TimingResult(cycles=10), TimingResult(cycles=0))

    def test_machine_config_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(width=0)
        with pytest.raises(ValueError):
            MachineConfig(l1_latency=0)
        with pytest.raises(ValueError):
            MachineConfig(recovery_penalty=-1)


class TestEndToEndTiming:
    def test_cpu_to_timing_pipeline(self):
        src = """
        main:
            li r1, 0x2000
            li r3, 50
        loop:
            ld r2, 0(r1)
            addi r1, r1, 4
            addi r3, r3, -1
            bne r3, r0, loop
            halt
        """
        mem = Memory()
        trace = Trace("e2e")
        CPU(mem).run(assemble(src), trace=trace)
        result = simulate(trace)
        assert result.instructions == len(trace)
        assert result.cycles > 0


class TestMemoryPorts:
    def test_ports_bound_memory_throughput(self):
        """With all loads L1-resident and independent, the cache ports are
        the binding structural constraint (paper: 4 data cache ports)."""
        t = Trace("ports")
        for i in range(4000):
            t.append(1, 0x1000 + 4 * (i % 8), addr=0x2000, dst=(i % 8) + 1)
        wide = simulate(t, config=MachineConfig(memory_ports=8))
        narrow = simulate(t, config=MachineConfig(memory_ports=4))
        assert narrow.cycles > wide.cycles * 1.8

    def test_alu_code_unaffected_by_ports(self):
        trace = make_independent_alu_trace(4000)
        a = simulate(trace, config=MachineConfig(memory_ports=1))
        b = simulate(trace, config=MachineConfig(memory_ports=8))
        assert a.cycles == b.cycles

    def test_port_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(memory_ports=0)
