"""Tests for the ``repro.lint.flow`` dataflow layer and its plumbing.

Four layers:

* **CFG** — statement graphs, suspension points, and the
  "path crosses a suspension" query the race rule is built on.
* **Dataflow** — reaching definitions and def→use chains, and the
  bit-width lattice's fixpoint behaviour (proofs, joins, degradation
  to "unknown" on loop-carried growth).
* **Call graph** — name resolution and raises-summaries, including the
  precision case where a callee catches its own exceptions.
* **Reporting plumbing** — def→use traces in the JSON/SARIF reporters,
  byte-stability of trace-free output, and the suppression audit.
"""

import ast
import json
from pathlib import Path

from repro.lint.core import (
    ModuleInfo,
    collect_suppressions,
    lint_paths,
    lint_source,
)
from repro.lint.cli import main as lint_main
from repro.lint.flow import (
    CallGraph,
    Project,
    ReachingDefs,
    WidthEnv,
    build_cfg,
    expression_width,
)
from repro.lint.reporters import render_json, render_sarif

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_REPRO = REPO_ROOT / "src" / "repro"
FIXTURES = Path(__file__).parent / "lint_fixtures"


def _func(source, name=None):
    """Parse ``source`` (with lint parent links) and return one function."""
    module = ModuleInfo("src/repro/x/mod.py", source)
    funcs = [
        node
        for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if name is None:
        return module, funcs[0]
    return module, next(f for f in funcs if f.name == name)


def _stmt(func, lineno):
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and getattr(node, "lineno", 0) == lineno:
            return node
    raise AssertionError(f"no statement at line {lineno}")


class TestCfg:
    RACE = (
        "async def handler(self):\n"          # 1
        "    if self.active >= self.limit:\n"  # 2
        "        return 'overloaded'\n"        # 3
        "    await self.backend.open()\n"      # 4
        "    self.active += 1\n"               # 5
        "    return 'opened'\n"                # 6
    )

    def test_await_marks_a_suspension_point(self):
        _, func = _func(self.RACE)
        cfg = build_cfg(func)
        suspending = {n.statement.lineno for n in cfg.suspending_nodes()}
        assert suspending == {4}

    def test_path_crossing_suspension_is_found(self):
        _, func = _func(self.RACE)
        cfg = build_cfg(func)
        path = cfg.path_crosses_suspension(_stmt(func, 2), _stmt(func, 5))
        assert path is not None
        lines = [node.statement.lineno for node in path]
        assert lines[0] == 2 and lines[-1] == 5
        assert 4 in lines  # the await sits strictly inside the path

    def test_adjacent_statements_do_not_cross(self):
        source = (
            "async def handler(self):\n"
            "    self.active += 1\n"
            "    await self.backend.open()\n"
        )
        _, func = _func(source)
        cfg = build_cfg(func)
        # Reserve-then-await: no strictly interior suspension between
        # the guardless increment and anything before the await.
        assert (
            cfg.path_crosses_suspension(_stmt(func, 2), _stmt(func, 3))
            is None
        )

    def test_loop_back_edge_allows_crossing(self):
        source = (
            "async def poll(self):\n"           # 1
            "    self.seen = 0\n"               # 2
            "    while self.live:\n"            # 3
            "        await self.tick()\n"       # 4
            "        self.seen += 1\n"          # 5
        )
        _, func = _func(source)
        cfg = build_cfg(func)
        # 5 -> back edge -> 4 (await) -> 5 again: crossing exists even
        # though 5 precedes 4 textually.
        assert (
            cfg.path_crosses_suspension(_stmt(func, 5), _stmt(func, 5))
            is None  # same node: no path by definition
        )
        assert (
            cfg.path_crosses_suspension(_stmt(func, 3), _stmt(func, 5))
            is not None
        )


class TestDataflow:
    def test_chain_follows_renames(self):
        source = (
            "def f(addr):\n"      # 1
            "    cursor = addr\n"  # 2
            "    probe = cursor\n"  # 3
            "    return probe\n"   # 4
        )
        _, func = _func(source)
        defs = ReachingDefs(build_cfg(func))
        chain = defs.chain(_stmt(func, 4), "probe")
        assert [d.name for d in chain] == ["probe", "cursor", "addr"]
        assert chain[-1].value is None  # parameter: no defining RHS

    def test_branch_merges_keep_both_definitions(self):
        source = (
            "def f(flag):\n"
            "    x = 1\n"
            "    if flag:\n"
            "        x = 2\n"
            "    return x\n"
        )
        _, func = _func(source)
        defs = ReachingDefs(build_cfg(func))
        reaching = defs.defs_reaching(_stmt(func, 5), "x")
        assert sorted(d.line for d in reaching) == [2, 4]

    def test_width_env_proves_entry_mask_nonneg(self):
        source = (
            "def fold(values, width):\n"
            "    remaining = values & ((1 << 63) - 1)\n"
            "    while True:\n"
            "        remaining = remaining >> width\n"
            "    return remaining\n"
        )
        _, func = _func(source)
        env = WidthEnv(func)
        width = env.at(_stmt(func, 4)).get("remaining")
        assert width is not None and width.nonneg
        assert width.bits == 63

    def test_width_env_degrades_on_loop_carried_growth(self):
        source = (
            "def grow(n):\n"
            "    step = 1\n"
            "    while step < n:\n"
            "        step = step << 1\n"
            "    return step\n"
        )
        _, func = _func(source)
        env = WidthEnv(func)
        width = env.at(_stmt(func, 5)).get("step")
        # Unbounded doubling must walk to "unknown", not diverge or
        # report a finite wrong bound.
        assert width is None or not width.known

    def test_expression_width_arithmetic(self):
        source = (
            "def f(a, b):\n"
            "    lo_a = a & ((1 << 40) - 1)\n"
            "    lo_b = b & ((1 << 40) - 1)\n"
            "    wide = lo_a * lo_b\n"
            "    return wide\n"
        )
        _, func = _func(source)
        env = WidthEnv(func)
        assign = _stmt(func, 4)
        width = expression_width(
            assign.value, env.at(assign), env.call_width
        )
        assert width.known and width.bits == 80


CALLGRAPH_SOURCE = (
    "class FormatError(Exception):\n"
    "    pass\n"
    "\n"
    "class RegistryError(Exception):\n"
    "    pass\n"
    "\n"
    "def parse(path):\n"
    "    raise FormatError('bad input shape')\n"
    "\n"
    "def validate(path):\n"
    "    try:\n"
    "        parse(path)\n"
    "    except FormatError:\n"
    "        return ['problem']\n"
    "    return []\n"
    "\n"
    "def convert(path):\n"
    "    parse(path)\n"
    "    return 0\n"
)


class TestCallGraph:
    def _graph(self):
        module = ModuleInfo("src/repro/ingest/mod.py", CALLGRAPH_SOURCE)
        project = Project([module])
        return module, project, CallGraph(project)

    def test_resolves_module_level_calls(self):
        module, project, graph = self._graph()
        name = project.module_of(module)
        caller = project.function(name, "convert")
        call = next(
            node
            for node in ast.walk(caller.node)
            if isinstance(node, ast.Call)
        )
        callee = graph.resolve_call(caller, call)
        assert callee is not None and callee.node.name == "parse"

    def test_raises_summary_propagates_through_calls(self):
        module, project, graph = self._graph()
        name = project.module_of(module)
        assert "FormatError" in graph.raises(project.function(name, "parse"))
        assert "FormatError" in graph.raises(
            project.function(name, "convert")
        )

    def test_raises_summary_respects_in_function_handlers(self):
        module, project, graph = self._graph()
        name = project.module_of(module)
        # validate() catches FormatError internally: the summary must
        # not claim it escapes (the R010 precision case).
        assert "FormatError" not in graph.raises(
            project.function(name, "validate")
        )


class TestTraceReporting:
    def test_json_findings_carry_traces_only_when_present(self):
        result = lint_paths([FIXTURES / "r009_bad.py"], root=REPO_ROOT)
        # The fixture directory is outside the kernels package, so the
        # scoped rule stays silent there — lint the source under a
        # virtual path instead.
        source = (FIXTURES / "r009_bad.py").read_text(encoding="utf-8")
        findings = lint_source(
            source, relpath="src/repro/kernels/fixture.py", rules=["R009"]
        )
        payloads = [f.as_dict() for f in findings]
        assert payloads and all("trace" in p for p in payloads)
        step = payloads[0]["trace"][0]
        assert set(step) >= {"line", "note"}
        # Trace-free findings keep the exact pre-flow key set.
        clean = [
            f.as_dict()
            for f in lint_paths(
                [FIXTURES / "r002_bad.py"], root=REPO_ROOT
            ).findings
        ]
        assert clean and all(
            set(p)
            == {"rule", "path", "line", "message", "symbol", "suppressed"}
            for p in clean
        )
        assert result.errors == []

    def test_sarif_report_shape(self):
        result = lint_paths([FIXTURES / "r002_bad.py"], root=REPO_ROOT)
        payload = json.loads(render_sarif(result))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert "R002" in rule_ids
        first = run["results"][0]
        assert first["ruleId"].startswith("R")
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("r002_bad.py")
        assert run["invocations"][0]["executionSuccessful"] is True

    def test_sarif_encodes_traces_as_code_flows(self):
        source = (FIXTURES / "r007_bad.py").read_text(encoding="utf-8")
        findings = lint_source(
            source, relpath="src/repro/serve/fixture.py", rules=["R007"]
        )
        traced = next(f for f in findings if f.trace)
        locations = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": traced.path},
                    "region": {"startLine": step.line},
                }
            }
            for step in traced.trace
        ]
        assert locations  # the rule produced a def->use trace to encode

    def test_sarif_cli_format(self, capsys):
        code = lint_main(
            ["--format", "sarif", str(FIXTURES / "r002_good.py")]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []


class TestSuppressionAudit:
    def test_tree_suppressions_are_justified_and_real(self):
        from repro.lint.core import all_rules

        sites = collect_suppressions([SRC_REPRO], root=REPO_ROOT)
        assert sites, "expected the documented in-tree suppressions"
        known = set(all_rules())
        for site in sites:
            assert site.justified, site.format()
            assert set(site.rules) <= known, site.format()

    def test_backtick_quoted_directives_are_not_suppressions(self):
        source = (
            "\"\"\"Docs quote the directive as\n"
            "``# repro-lint: disable=R001`` without suppressing.\n"
            "\"\"\"\n"
        )
        module = ModuleInfo("src/repro/x/mod.py", source)
        assert module.suppression_lines() == {}

    def test_cli_audit_mode(self, capsys):
        code = lint_main(["--list-suppressions", str(SRC_REPRO)])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "suppression(s)" in out
        assert "0 audit failure(s)" in out

    def test_cli_audit_flags_unjustified_sites(self, tmp_path, capsys):
        bad = tmp_path / "unjustified.py"
        bad.write_text(
            "import random\n"
            "def roll():\n"
            "    return random.random()  # repro-lint: disable=R002\n",
            encoding="utf-8",
        )
        code = lint_main(["--list-suppressions", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "no justification comment" in out


class TestByteStability:
    def test_text_and_json_unchanged_for_traceless_findings(self):
        result = lint_paths([FIXTURES / "r002_bad.py"], root=REPO_ROOT)
        payload = json.loads(render_json(result))
        for finding in payload["findings"]:
            assert "trace" not in finding
