"""Tests for the trace container, serialisation and derived streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.event import (
    KIND_ALU,
    KIND_BRANCH,
    KIND_CALL,
    KIND_LOAD,
    KIND_RET,
    KIND_STORE,
    LoadEvent,
    TraceEvent,
)
from repro.trace.trace import Trace


def make_trace():
    t = Trace("sample", meta={"suite": "INT"})
    t.append(KIND_ALU, 0x1000, dst=1)
    t.append(KIND_LOAD, 0x1004, addr=0x2000, offset=8, dst=2, src1=1)
    t.append(KIND_BRANCH, 0x1008, src1=1, src2=2, taken=1)
    t.append(KIND_STORE, 0x100C, addr=0x2004, src1=1, src2=2)
    t.append(KIND_CALL, 0x1010, addr=0x7FF0, taken=1)
    t.append(KIND_RET, 0x1014, addr=0x7FF0, taken=1)
    return t


class TestTraceBasics:
    def test_length(self):
        assert len(make_trace()) == 6

    def test_indexing_returns_event(self):
        ev = make_trace()[1]
        assert isinstance(ev, TraceEvent)
        assert ev.is_load and ev.addr == 0x2000 and ev.offset == 8

    def test_event_kind_flags(self):
        t = make_trace()
        assert t[1].is_load and not t[1].is_store
        assert t[3].is_store
        assert t[2].is_branch
        assert t[4].is_store          # call writes the return address
        assert t[5].is_load           # ret reads it

    def test_events_iteration(self):
        assert [e.ip for e in make_trace().events()] == [
            0x1000, 0x1004, 0x1008, 0x100C, 0x1010, 0x1014,
        ]

    def test_loads_iteration(self):
        loads = list(make_trace().loads())
        assert loads[0] == LoadEvent(0x1004, 0x2000, 8)
        assert len(loads) == 2  # ld + ret

    def test_extend(self):
        a, b = make_trace(), make_trace()
        a.extend(b)
        assert len(a) == 12


class TestPredictorStream:
    def test_stream_contents(self):
        stream = make_trace().predictor_stream()
        tags = [item[0] for item in stream]
        # load, branch, call, (ret-load, ret-marker)
        assert tags == [1, 0, 2, 1, 3]

    def test_load_tuple_fields(self):
        stream = make_trace().predictor_stream()
        assert stream[0] == (1, 0x1004, 0x2000, 8)

    def test_branch_tuple_carries_taken(self):
        stream = make_trace().predictor_stream()
        assert stream[1] == (0, 0x1008, 1, 0)

    def test_alu_and_store_dropped(self):
        stream = make_trace().predictor_stream()
        ips = {item[1] for item in stream}
        assert 0x1000 not in ips and 0x100C not in ips


class TestSummary:
    def test_counts(self):
        s = make_trace().summary()
        assert s.instructions == 6
        assert s.loads == 2
        assert s.stores == 2
        assert s.branches == 1
        assert s.taken_branches == 1
        assert s.static_loads == 2

    def test_load_fraction(self):
        assert make_trace().summary().load_fraction == pytest.approx(2 / 6)

    def test_empty_trace_summary(self):
        s = Trace("empty").summary()
        assert s.instructions == 0 and s.load_fraction == 0.0


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        t = make_trace()
        path = tmp_path / "t.npz"
        t.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "sample"
        assert loaded.meta == {"suite": "INT"}
        for col in ("kind", "ip", "addr", "offset", "dst", "src1", "src2",
                    "taken"):
            assert getattr(loaded, col) == getattr(t, col)

    def test_creates_parent_dirs(self, tmp_path):
        t = make_trace()
        path = tmp_path / "a" / "b" / "t.npz"
        t.save(path)
        assert path.exists()

    @settings(max_examples=20)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 6),
                st.integers(0, 2**31),
                st.integers(0, 2**31),
                st.integers(-128, 127),
            ),
            max_size=50,
        )
    )
    def test_roundtrip_property(self, rows):
        import tempfile
        from pathlib import Path

        t = Trace("prop")
        for kind, ip, addr, offset in rows:
            t.append(kind, ip, addr, offset)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.npz"
            t.save(path)
            loaded = Trace.load(path)
        assert loaded.kind == t.kind
        assert loaded.ip == t.ip
        assert loaded.addr == t.addr
        assert loaded.offset == t.offset
