"""Benchmark-set registry: manifest schema, integrity, CLI, engine wiring.

Exercises the declarative registry end to end:

* every way a manifest can be malformed raises a typed
  :class:`RegistryError` with the manifest path in the message;
* integrity is load-bearing — digest or record-count drift between the
  manifest and the trace file refuses to build a trace;
* ``repro ingest validate`` maps clean / findings / unloadable onto the
  repo's 0 / 1 / 2 exit-code convention;
* registry names resolve through :mod:`repro.workloads.suites`, the
  engine records ingest provenance in schema-valid run manifests, and a
  fig5 cell computed on an ingested trace is byte-identical between the
  ``python`` and ``numpy`` backends (acceptance criterion).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.eval import cli as repro_cli
from repro.eval import experiments
from repro.eval.engine import Job, run_jobs
from repro.ingest import RegistryError
from repro.ingest.normalize import sha256_bytes
from repro.telemetry import manifest as run_manifest
from repro.telemetry.schema import validate_manifest
from repro.workloads import registry, suites

CHECKED_IN = Path("benchmarks") / "traces" / "registry.json"

DRAM_BODY = b"".join(
    b"0x%x READ %d\n" % (0x1000 + 64 * i, 10 * i) for i in range(50)
)
CSV_BODY = b"pc,addr,size,is_load\n" + b"".join(
    b"0x401000,0x%x,8,1\n" % (0x2000 + 8 * i) for i in range(40)
)


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_JOBS", "1")
    monkeypatch.delenv("REPRO_REGISTRY", raising=False)
    registry.clear_cache()
    yield
    registry.clear_cache()


def _write(tmp_path, document, name="registry.json"):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return path


def _entry(tmp_path, *, name="ext_a", body=DRAM_BODY, records=50, **extra):
    trace_file = tmp_path / f"{name}.trc"
    trace_file.write_bytes(body)
    entry = {
        "name": name,
        "file": trace_file.name,
        "sha256": sha256_bytes(body),
        "records": records,
    }
    entry.update(extra)
    return entry


def _manifest(tmp_path, entries=None, sets=None):
    document = {"traces": entries or [_entry(tmp_path)]}
    if sets is not None:
        document["sets"] = sets
    return _write(tmp_path, document)


# ---------------------------------------------------------------------------
# Manifest schema errors (all typed, all naming the manifest)
# ---------------------------------------------------------------------------


class TestManifestSchema:
    def _error(self, path):
        with pytest.raises(RegistryError) as excinfo:
            registry.load_registry(path)
        message = str(excinfo.value)
        assert str(path) in message
        return message

    def test_happy_path(self, tmp_path):
        path = _manifest(
            tmp_path,
            entries=[_entry(tmp_path, format="dramsim",
                            description="a stream", suite="EXT")],
            sets={"quick": ["ext_a"]},
        )
        loaded = registry.load_registry(path)
        assert list(loaded.entries) == ["ext_a"]
        entry = loaded.entries["ext_a"]
        assert entry.format == "dramsim"
        assert entry.suite == "EXT"
        assert entry.path == tmp_path / "ext_a.trc"
        assert loaded.sets == {"quick": ("ext_a",)}

    def test_missing_manifest(self, tmp_path):
        message = self._error(tmp_path / "nope.json")
        assert message.endswith("registry manifest not found")

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "registry.yaml"
        path.write_text("traces: []")
        assert "unsupported manifest suffix '.yaml'" in self._error(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "registry.json"
        path.write_text("{not json")
        assert "invalid JSON" in self._error(path)

    def test_root_not_object(self, tmp_path):
        assert "manifest root must be a table/object" in self._error(
            _write(tmp_path, ["not", "a", "table"])
        )

    def test_unknown_top_level_key(self, tmp_path):
        path = _write(
            tmp_path, {"traces": [_entry(tmp_path)], "tracez": []}
        )
        assert "unknown top-level key(s): tracez" in self._error(path)

    def test_traces_missing_or_empty(self, tmp_path):
        for document in ({}, {"traces": []}, {"traces": "x"}):
            assert "'traces' must be a non-empty array" in self._error(
                _write(tmp_path, document)
            )

    def test_entry_not_object(self, tmp_path):
        assert "traces[0] must be a table/object" in self._error(
            _write(tmp_path, {"traces": ["x"]})
        )

    def test_entry_unknown_key(self, tmp_path):
        entry = _entry(tmp_path, nickname="fast")
        assert "traces[0] has unknown key(s): nickname" in self._error(
            _write(tmp_path, {"traces": [entry]})
        )

    def test_entry_missing_required_keys(self, tmp_path):
        entry = _entry(tmp_path)
        del entry["sha256"], entry["records"]
        assert (
            "traces[0] missing required key(s): sha256, records"
            in self._error(_write(tmp_path, {"traces": [entry]}))
        )

    def test_records_must_be_positive_int(self, tmp_path):
        bad = _entry(tmp_path, records=0)
        assert "traces[0].records must be >= 1" in self._error(
            _write(tmp_path, {"traces": [bad]})
        )
        bad = _entry(tmp_path)
        bad["records"] = "50"
        assert "traces[0].records must be int" in self._error(
            _write(tmp_path, {"traces": [bad]})
        )

    def test_sha256_must_be_64_lowercase_hex(self, tmp_path):
        for digest in ("abc123", "A" * 64, "g" * 64):
            bad = _entry(tmp_path)
            bad["sha256"] = digest
            assert (
                "traces[0].sha256 must be 64 lowercase hex digits"
                in self._error(_write(tmp_path, {"traces": [bad]}))
            )

    def test_unknown_format(self, tmp_path):
        bad = _entry(tmp_path, format="elf")
        assert (
            "traces[0].format 'elf' unknown"
            " (expected one of: dramsim, pincsv)"
            in self._error(_write(tmp_path, {"traces": [bad]}))
        )

    def test_duplicate_trace_name(self, tmp_path):
        entries = [_entry(tmp_path), _entry(tmp_path)]
        assert "duplicate trace name 'ext_a'" in self._error(
            _write(tmp_path, {"traces": entries})
        )

    def test_builtin_name_shadowing_rejected(self, tmp_path):
        builtin = suites.trace_names()[0]
        entry = _entry(tmp_path, name=builtin)
        assert (
            f"trace name {builtin!r} shadows a built-in"
            in self._error(_write(tmp_path, {"traces": [entry]}))
        )

    def test_set_must_be_nonempty_list_of_known_traces(self, tmp_path):
        assert "set 'q' must be a non-empty array" in self._error(
            _manifest(tmp_path, sets={"q": []})
        )
        assert "set 'q' references unknown trace 'ghost'" in self._error(
            _manifest(tmp_path, sets={"q": ["ghost"]})
        )

    def test_set_name_colliding_with_trace(self, tmp_path):
        assert "set name 'ext_a' collides with a trace name" in self._error(
            _manifest(tmp_path, sets={"ext_a": ["ext_a"]})
        )

    def test_toml_manifest_loads(self, tmp_path):
        pytest.importorskip("tomllib")
        entry = _entry(tmp_path)
        path = tmp_path / "registry.toml"
        path.write_text(
            "[[traces]]\n"
            f'name = "{entry["name"]}"\n'
            f'file = "{entry["file"]}"\n'
            f'sha256 = "{entry["sha256"]}"\n'
            f"records = {entry['records']}\n"
            "[sets]\n"
            'quick = ["ext_a"]\n'
        )
        loaded = registry.load_registry(path)
        assert list(loaded.entries) == ["ext_a"]
        assert loaded.sets == {"quick": ("ext_a",)}

    def test_invalid_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "registry.toml"
        path.write_text("[[traces\n")
        assert "invalid TOML" in self._error(path)


# ---------------------------------------------------------------------------
# Integrity: digest and record count gate trace materialisation
# ---------------------------------------------------------------------------


class TestIntegrity:
    def _use(self, monkeypatch, path):
        monkeypatch.setenv("REPRO_REGISTRY", str(path))
        registry.clear_cache()

    def test_get_trace_builds_and_caches(self, tmp_path, monkeypatch):
        self._use(monkeypatch, _manifest(tmp_path))
        trace = registry.get_trace("ext_a")
        assert trace.meta["suite"] == "EXT"
        assert trace.meta["ingest"]["records"] == 50
        cache_file = registry.cache_path("ext_a")
        assert cache_file.exists()
        digest = sha256_bytes(DRAM_BODY)
        assert digest[:12] in cache_file.name
        # Warm path survives the source file disappearing.
        (tmp_path / "ext_a.trc").unlink()
        again = registry.get_trace("ext_a")
        assert list(again.addr) == list(trace.addr)

    def test_sha_mismatch_refuses_to_build(self, tmp_path, monkeypatch):
        entry = _entry(tmp_path)
        entry["sha256"] = "0" * 64
        self._use(monkeypatch, _write(tmp_path, {"traces": [entry]}))
        with pytest.raises(RegistryError) as excinfo:
            registry.get_trace("ext_a")
        message = str(excinfo.value)
        assert "ext_a: sha256 mismatch" in message
        assert "manifest 000000000000..." in message

    def test_record_count_mismatch_refuses_to_build(
        self, tmp_path, monkeypatch
    ):
        self._use(
            monkeypatch,
            _write(tmp_path, {"traces": [_entry(tmp_path, records=49)]}),
        )
        with pytest.raises(RegistryError) as excinfo:
            registry.get_trace("ext_a")
        assert "record count mismatch" in str(excinfo.value)
        assert "(manifest 49, file 50)" in str(excinfo.value)

    def test_missing_file_is_registry_error(self, tmp_path, monkeypatch):
        path = _manifest(tmp_path)
        (tmp_path / "ext_a.trc").unlink()
        self._use(monkeypatch, path)
        with pytest.raises(RegistryError) as excinfo:
            registry.get_trace("ext_a")
        assert "ext_a: trace file" in str(excinfo.value)
        assert "unreadable" in str(excinfo.value)

    def test_unknown_name_is_key_error(self, tmp_path, monkeypatch):
        self._use(monkeypatch, _manifest(tmp_path))
        with pytest.raises(KeyError):
            registry.get_trace("ext_ghost")

    def test_instruction_cap_truncates_with_own_cache(
        self, tmp_path, monkeypatch
    ):
        self._use(monkeypatch, _manifest(tmp_path))
        capped = registry.get_trace("ext_a", instructions=10)
        assert len(capped) == 10
        assert capped.meta["ingest"]["dropped"] == {"truncated": 40}
        assert registry.cache_path("ext_a", 10) != registry.cache_path("ext_a")

    def test_validate_reports_problems_without_raising(
        self, tmp_path, monkeypatch
    ):
        good = _entry(tmp_path, name="ext_ok", body=CSV_BODY, records=40)
        drifted = _entry(tmp_path, name="ext_bad")
        drifted["sha256"] = "0" * 64
        path = _write(tmp_path, {"traces": [good, drifted]})
        self._use(monkeypatch, path)
        problems = registry.validate(registry.load_registry(path))
        assert len(problems) == 1
        assert "ext_bad: sha256 mismatch" in problems[0]


# ---------------------------------------------------------------------------
# suites integration: registry names are first-class trace names
# ---------------------------------------------------------------------------


class TestSuitesIntegration:
    def test_suites_fall_back_to_registry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_REGISTRY", str(_manifest(tmp_path))
        )
        registry.clear_cache()
        trace = suites.get_trace("ext_a")
        assert trace.meta["workload"] == "external"
        stream = suites.get_predictor_stream("ext_a")
        assert len(stream) == 50
        assert suites.suite_of("ext_a") == "EXT"

    def test_set_names_expand_on_the_cli_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_REGISTRY",
            str(_manifest(tmp_path, sets={"quick": ["ext_a"]})),
        )
        registry.clear_cache()
        assert registry.expand_trace_names(["quick", "INT_xli"]) == [
            "ext_a", "INT_xli"
        ]

    def test_checked_in_manifest_is_valid(self):
        loaded = registry.load_registry(CHECKED_IN)
        assert set(loaded.entries) == {"ext_dram_stream", "ext_pin_mix"}
        assert registry.validate(loaded) == []


# ---------------------------------------------------------------------------
# CLI exit codes: repro ingest validate
# ---------------------------------------------------------------------------


class TestValidateCli:
    def test_clean_manifest_exits_zero(self, tmp_path, capsys):
        path = _manifest(tmp_path, sets={"quick": ["ext_a"]})
        assert repro_cli.main(["ingest", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s), 1 set(s) validate" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = _manifest(tmp_path)
        (tmp_path / "ext_a.trc").write_bytes(b"0xdead READ 0\n")  # drift
        assert repro_cli.main(["ingest", "validate", str(path)]) == 1
        assert "sha256 mismatch" in capsys.readouterr().out

    def test_malformed_manifest_exits_two(self, tmp_path, capsys):
        path = _write(tmp_path, {"traces": [{"name": "x"}]})
        assert repro_cli.main(["ingest", "validate", str(path)]) == 2
        assert "missing required key(s)" in capsys.readouterr().err

    def test_missing_manifest_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "none.json"
        assert repro_cli.main(["ingest", "validate", str(missing)]) == 2
        assert "registry manifest not found" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Engine + manifests + backend parity (acceptance criteria)
# ---------------------------------------------------------------------------

INSTR = 2000


class TestEngineIntegration:
    def test_manifest_records_ingest_provenance(self, tmp_path, monkeypatch):
        out = tmp_path / "telemetry"
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(out))
        registry.clear_cache()
        job = Job(trace="ext_dram_stream", factory="hybrid",
                  variant="hybrid", instructions=INSTR)
        run_jobs([job])
        manifests = run_manifest.load_manifests(out)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert validate_manifest(manifest) == []
        ingest = manifest["trace"]["ingest"]
        assert ingest["format"] == "dramsim"
        assert ingest["records"] == 600
        assert ingest["sha256"] == sha256_bytes(
            (CHECKED_IN.parent / "ext_dram_stream.trc").read_bytes()
        )
        cache_name = Path(manifest["trace"]["cache"]["path"]).name
        assert ingest["sha256"][:12] in cache_name

    @pytest.mark.parametrize("name", ["ext_dram_stream", "ext_pin_mix"])
    def test_fig5_cell_backend_parity(self, name, monkeypatch):
        """python and numpy produce byte-identical metrics and tables."""
        registry.clear_cache()
        rendered = {}
        metrics = {}
        for backend in ("python", "numpy"):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            comparison = experiments.fig5(
                traces=[name], instructions=INSTR
            )
            rendered[backend] = comparison.render()
            metrics[backend] = {
                variant: {
                    suite: (sm.combined.loads, sm.combined.predictions,
                            sm.combined.speculative,
                            sm.combined.correct_speculative,
                            sm.combined.correct_predictions)
                    for suite, sm in by_suite.items()
                }
                for variant, by_suite in comparison.suites.items()
            }
        assert metrics["python"] == metrics["numpy"]
        assert rendered["python"].encode() == rendered["numpy"].encode()
        assert "EXT" in rendered["python"]
