"""``repro stats tail`` / ``repro stats spans`` reporting backends."""

import json

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    render_metrics_snapshot,
    scan_directory,
    spans_report,
    summarize_spans,
    tail,
)
from repro.obs.tracing import Tracer


def _snapshot():
    registry = MetricsRegistry()
    registry.counter("serve.feeds").inc(7)
    registry.gauge("serve.queue.depth").set(2.0)
    hist = registry.histogram("serve.queue.wait_s", bounds=(0.01, 0.1))
    hist.observe(0.005)
    hist.observe(0.05)
    registry.histogram("empty.hist", bounds=(1.0,))
    return registry.snapshot()


class TestRenderSnapshot:
    def test_renders_all_instrument_kinds(self):
        text = render_metrics_snapshot(_snapshot())
        assert "serve.feeds" in text and "7" in text
        assert "serve.queue.depth" in text
        assert "serve.queue.wait_s" in text
        assert "p50<=" in text and "p99<=" in text
        assert "(empty)" in text

    def test_empty_snapshot(self):
        assert "no metrics" in render_metrics_snapshot({})


class TestDirectoryTail:
    def _populate(self, directory):
        flight = FlightRecorder()
        flight.record("s1", "open")
        flight.dump("s1", "timeout", directory)
        (directory / "run.json").write_text(json.dumps({
            "schema": "repro.run/v1",
            "job": {"kind": "predict", "trace": "t", "variant": "v"},
            "run": {"wall_s": 0.25},
        }), encoding="utf-8")
        (directory / "junk.json").write_text("{", encoding="utf-8")

    def test_scan_digests_each_file_once(self, tmp_path):
        self._populate(tmp_path)
        lines, seen = scan_directory(tmp_path)
        assert len(lines) == 3
        text = "\n".join(lines)
        assert "postmortem" in text and "reason=timeout" in text
        assert "manifest" in text and "wall_s=0.25" in text
        assert "unreadable" in text
        again, _ = scan_directory(tmp_path, seen)
        assert again == []

    def test_tail_once_prints_digests(self, tmp_path):
        self._populate(tmp_path)
        out = []
        assert tail(str(tmp_path), once=True, out=out.append) == 0
        assert len(out) == 3

    def test_tail_once_empty_directory(self, tmp_path):
        out = []
        assert tail(str(tmp_path), once=True, out=out.append) == 0
        assert "no manifests" in out[0]

    def test_tail_bad_target(self, tmp_path):
        out = []
        assert tail(
            str(tmp_path / "missing"), once=True, out=out.append
        ) == 2

    def test_tail_unreachable_admin_endpoint(self):
        out = []
        # Port 1 on localhost: connection refused without a listener.
        assert tail("127.0.0.1:1", once=True, out=out.append) == 1
        assert "unreachable" in out[0]


class TestSpansReport:
    def _export(self):
        tracer = Tracer()
        for i in range(3):
            tracer.record(
                "serve.feed.queue_wait", start_us=float(i), dur_us=100.0,
                trace="lg0-1",
            )
        tracer.record("serve.batch.exec", start_us=0.0, dur_us=5000.0)
        return tracer.export()

    def test_summarize_groups_by_name_and_trace(self):
        text = summarize_spans(self._export())
        assert "4 events" in text
        assert "2 names" in text and "1 trace ids" in text
        # Ranked by total time: batch.exec (5ms) above queue_wait.
        assert text.index("serve.batch.exec") < text.index(
            "serve.feed.queue_wait"
        )
        assert "lg0-1 (3 spans)" in text

    def test_spans_report_validates_then_summarises(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(self._export()), encoding="utf-8")
        out = []
        assert spans_report(str(path), out=out.append) == 0
        assert "4 events" in out[0]

    def test_spans_report_rejects_unreadable_and_invalid(self, tmp_path):
        out = []
        assert spans_report(str(tmp_path / "nope.json"),
                            out=out.append) == 2
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}),
                       encoding="utf-8")
        assert spans_report(str(bad), out=out.append) == 2
