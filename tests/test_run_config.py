"""RunConfig: the single env-knob resolution point (PR 7 satellite).

Pins the precedence contract — defaults < environment < CLI flags — and
the round-trip through :func:`repro.eval.config.apply`, which is how a
resolved configuration crosses process boundaries (pool workers rebuild
it with :func:`from_env`).
"""

import argparse

import pytest

from repro.eval import config as run_config
from repro.eval.config import RunConfig, apply, from_args, from_env
from repro.kernels.api import BACKEND_NUMPY, BACKEND_PYTHON


def test_defaults_when_env_empty():
    config = from_env({})
    assert config == RunConfig()
    assert config.resolved_jobs() >= 1
    assert config.resolved_backend() in (BACKEND_PYTHON, BACKEND_NUMPY)
    assert str(config.resolved_telemetry_dir()) == "telemetry"
    assert config.resolved_trace_scale() == 1.0


def test_env_overrides_defaults():
    config = from_env(
        {
            "REPRO_JOBS": "3",
            "REPRO_BACKEND": "PYTHON",
            "REPRO_TELEMETRY": "1",
            "REPRO_TELEMETRY_DIR": "out",
            "REPRO_TELEMETRY_PROFILE": "true",
            "REPRO_TRACE_CACHE": "/tmp/cache",
            "REPRO_TRACE_SCALE": "0.25",
        }
    )
    assert config.jobs == 3
    assert config.backend == "python"  # normalised to lower case
    assert config.telemetry is True
    assert config.telemetry_dir == "out"
    assert config.profile is True
    assert config.trace_cache == "/tmp/cache"
    assert config.resolved_trace_scale() == 0.25


def test_args_override_env():
    args = argparse.Namespace(
        jobs=7, backend="python", telemetry=True, telemetry_dir="cli-dir"
    )
    config = from_args(args, environ={"REPRO_JOBS": "2", "REPRO_BACKEND": ""})
    assert config.jobs == 7
    assert config.backend == "python"
    assert config.telemetry is True
    assert config.telemetry_dir == "cli-dir"


def test_absent_args_leave_env_in_force():
    args = argparse.Namespace(jobs=None, backend=None)
    config = from_args(args, environ={"REPRO_JOBS": "4"})
    assert config.jobs == 4


def test_bad_values_raise_with_knob_name():
    with pytest.raises(ValueError, match="REPRO_JOBS must be an integer"):
        from_env({"REPRO_JOBS": "many"})
    with pytest.raises(ValueError, match="--jobs must be >= 1"):
        from_args(argparse.Namespace(jobs=0), environ={})
    with pytest.raises(ValueError, match="unknown backend"):
        from_env({"REPRO_BACKEND": "fortran"}).resolved_backend()
    with pytest.raises(ValueError, match="REPRO_TRACE_SCALE"):
        from_env({"REPRO_TRACE_SCALE": "-1"}).resolved_trace_scale()


def test_apply_round_trips_through_environment():
    config = RunConfig(
        jobs=2,
        backend="python",
        telemetry=True,
        telemetry_dir="rt",
        profile=True,
        trace_cache="cache",
        trace_scale=0.5,
    )
    env = {}
    returned = apply(config, environ=env)
    assert returned is config
    assert from_env(env) == config


def test_apply_leaves_unpinned_fields_unexported():
    env = {}
    apply(RunConfig(), environ=env)
    assert env == {}


def test_module_accessors_reread_environment(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert run_config.resolve_jobs() == 5
    assert run_config.resolve_jobs(2) == 2
    monkeypatch.setenv("REPRO_BACKEND", "python")
    assert run_config.resolve_backend() == "python"
    assert run_config.resolve_backend("python") == "python"
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    assert run_config.telemetry_enabled() is True
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", "elsewhere")
    assert str(run_config.telemetry_dir()) == "elsewhere"
    monkeypatch.setenv("REPRO_TRACE_SCALE", "2.0")
    assert run_config.trace_scale() == 2.0


def test_with_overrides_keeps_none_fields():
    base = RunConfig(jobs=2, backend="python")
    same = base.with_overrides(jobs=None, backend=None)
    assert same == base
    changed = base.with_overrides(jobs=9)
    assert changed.jobs == 9 and changed.backend == "python"
