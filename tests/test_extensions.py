"""Tests for the Section 6 future-work extensions: profile-guided
prediction and the variable-history CAP."""

import pytest

from repro.analysis import CLASS_CONTEXT, CLASS_IRREGULAR, CLASS_STRIDE
from repro.eval.runner import run_predictor
from repro.pipeline import PipelinedPredictor
from repro.predictors import (
    CAPPredictor,
    HybridPredictor,
    ProfileGuidedPredictor,
    VariableHistoryCAP,
    VariableHistoryConfig,
    build_profile,
)
from repro.workloads import (
    ArraySumWorkload,
    LinkedListWorkload,
    ListEvalWorkload,
    RandomAccessWorkload,
    trace_workload,
)


class TestBuildProfile:
    def test_classifies_linked_list(self):
        trace = trace_workload(
            LinkedListWorkload(seed=3, via_global_ptr=False),
            max_instructions=20_000,
        )
        profile = build_profile(trace)
        assert profile
        assert CLASS_CONTEXT in profile.values()

    def test_classifies_arrays(self):
        trace = trace_workload(ArraySumWorkload(seed=3), max_instructions=20_000)
        profile = build_profile(trace)
        assert CLASS_STRIDE in profile.values()


class TestProfileGuidedPredictor:
    def test_matches_hybrid_quality_on_mixed_trace(self):
        trace = trace_workload(ListEvalWorkload(seed=9), max_instructions=40_000)
        profile = build_profile(trace)
        stream = trace.predictor_stream()
        guided = run_predictor(ProfileGuidedPredictor(profile), stream)
        hybrid = run_predictor(HybridPredictor(), stream)
        # The paper's promise: comparable quality from simpler hardware.
        assert guided.correct_rate > hybrid.correct_rate - 0.08
        assert guided.accuracy > 0.97

    def test_irregular_loads_never_touch_tables(self):
        trace = trace_workload(
            RandomAccessWorkload(seed=3), max_instructions=20_000,
        )
        profile = build_profile(trace)
        predictor = ProfileGuidedPredictor(profile)
        run_predictor(predictor, trace.predictor_stream())
        # The irregular table loads were suppressed entirely...
        assert predictor.suppressed_loads > 0
        # ...so the Link Table never saw their pollution.
        assert predictor.cap.component.link_table.link_writes == 0

    def test_stride_loads_keep_lt_empty(self):
        trace = trace_workload(ArraySumWorkload(seed=3), max_instructions=20_000)
        profile = build_profile(trace)
        predictor = ProfileGuidedPredictor(profile)
        metrics = run_predictor(predictor, trace.predictor_stream())
        assert metrics.prediction_rate > 0.8
        assert predictor.cap.component.link_table.occupancy() == 0

    def test_cross_input_profile(self):
        """Profile on one seed, evaluate on another (realistic PGO)."""
        train = trace_workload(
            LinkedListWorkload(seed=3, via_global_ptr=False),
            max_instructions=15_000,
        )
        evaluate = trace_workload(
            LinkedListWorkload(seed=4, via_global_ptr=False),
            max_instructions=15_000,
        )
        guided = ProfileGuidedPredictor(build_profile(train))
        metrics = run_predictor(guided, evaluate.predictor_stream())
        assert metrics.prediction_rate > 0.7

    def test_default_class_validated(self):
        with pytest.raises(ValueError):
            ProfileGuidedPredictor({}, default_class="psychic")

    def test_unprofiled_loads_use_default(self):
        predictor = ProfileGuidedPredictor({}, default_class=CLASS_IRREGULAR)
        pred = predictor.predict(0x999, 0)
        assert not pred.made
        assert predictor.suppressed_loads == 1

    def test_works_pipelined(self):
        trace = trace_workload(ListEvalWorkload(seed=9), max_instructions=20_000)
        profile = build_profile(trace)
        wrapped = PipelinedPredictor(ProfileGuidedPredictor(profile), 4)
        metrics = run_predictor(wrapped, trace.predictor_stream())
        assert metrics.accuracy > 0.9

    def test_reset(self):
        predictor = ProfileGuidedPredictor({0x100: CLASS_IRREGULAR})
        predictor.predict(0x100, 0)
        predictor.reset()
        assert predictor.suppressed_loads == 0


class TestVariableHistoryCAP:
    def _ring_run(self, predictor, bases, offset, reps):
        spec = correct = 0
        for _ in range(reps):
            for base in bases:
                pred = predictor.predict(0x100, offset)
                if pred.speculative:
                    spec += 1
                    correct += pred.address == base + offset
                predictor.update(0x100, offset, base + offset, pred)
        return spec, correct

    def test_learns_simple_ring(self):
        bases = [0x2000_0000 + 0x40 * k for k in (1, 9, 4, 12)]
        p = VariableHistoryCAP()
        spec, correct = self._ring_run(p, bases, 8, 60)
        assert spec > 150 and correct == spec

    def test_competitive_with_fixed_cap_on_mixed_trace(self):
        trace = trace_workload(ListEvalWorkload(seed=9), max_instructions=40_000)
        stream = trace.predictor_stream()
        vh = run_predictor(VariableHistoryCAP(), stream)
        fixed = run_predictor(CAPPredictor(), stream)
        assert vh.correct_rate > fixed.correct_rate - 0.05
        assert vh.accuracy > 0.97

    def test_chooser_adapts(self):
        """A sequence needing a long history must drive the chooser high."""
        from repro.predictors.base import lb_key

        # a a b pattern: after 'a' the next is ambiguous with history 1.
        bases = [0x2000_0100, 0x2000_0100, 0x2000_0500]
        p = VariableHistoryCAP(
            VariableHistoryConfig(short_length=1, long_length=4)
        )
        self._ring_run(p, bases, 0, 80)
        entry = p.load_buffer.peek(lb_key(0x100))
        assert entry.chooser.favors_high

    def test_config_validation(self):
        with pytest.raises(ValueError):
            VariableHistoryConfig(short_length=4, long_length=4)

    def test_reset(self):
        p = VariableHistoryCAP()
        self._ring_run(p, [0x2000_0000, 0x2000_0100], 0, 10)
        p.reset()
        assert p.load_buffer.occupancy() == 0

    def test_pipelined_compatible(self):
        bases = [0x2000_0000 + 0x40 * k for k in (1, 9, 4, 12)]
        p = PipelinedPredictor(VariableHistoryCAP(), 4)
        spec = correct = 0
        for rep in range(100):
            for i, base in enumerate(bases):
                pred = p.predict(0x100, 8)
                if pred.speculative:
                    spec += 1
                    correct += pred.address == base + 8
                p.update(0x100, 8, base + 8, pred)
                p.on_branch(0x300, i != len(bases) - 1)
        if spec:
            assert correct / spec > 0.9
