"""Tests for instructions, the program builder and label resolution."""

import pytest

from repro.isa.instructions import SP, Instruction, Op
from repro.isa.program import Program, ProgramBuilder, UnresolvedLabelError


class TestInstructionClassification:
    def test_loads(self):
        assert Instruction(Op.LD, rd=1, rs1=2).is_load
        assert Instruction(Op.POP, rd=1).is_load
        assert Instruction(Op.RET).is_load

    def test_stores(self):
        assert Instruction(Op.ST, rs1=1, rs2=2).is_store
        assert Instruction(Op.PUSH, rs2=1).is_store
        assert Instruction(Op.CALL, target=0).is_store

    def test_branches(self):
        assert Instruction(Op.BEQ, rs1=0, rs2=1, target=0).is_branch
        assert not Instruction(Op.JMP, target=0).is_branch
        assert Instruction(Op.JMP, target=0).is_control

    def test_alu_is_nothing_special(self):
        instr = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
        assert not (instr.is_load or instr.is_store or instr.is_control)


class TestInstructionDataflow:
    def test_three_operand_sources(self):
        assert Instruction(Op.ADD, rd=1, rs1=2, rs2=3).sources() == (2, 3)

    def test_load_sources_and_dest(self):
        instr = Instruction(Op.LD, rd=4, rs1=5, imm=8)
        assert instr.sources() == (5,)
        assert instr.destination() == 4

    def test_store_sources_no_dest(self):
        instr = Instruction(Op.ST, rs1=1, rs2=2, imm=0)
        assert set(instr.sources()) == {1, 2}
        assert instr.destination() is None

    def test_push_reads_sp(self):
        assert SP in Instruction(Op.PUSH, rs2=3).sources()

    def test_li_has_no_sources(self):
        assert Instruction(Op.LI, rd=1, imm=5).sources() == ()

    def test_branch_has_no_dest(self):
        assert Instruction(Op.BNE, rs1=1, rs2=2, target=0).destination() is None


class TestInstructionValidation:
    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=16, rs1=0, rs2=0)
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=0, rs1=-1, rs2=0)

    def test_str_formats(self):
        assert str(Instruction(Op.LD, rd=1, rs1=2, imm=8)) == "ld r1, 8(r2)"
        assert str(Instruction(Op.LI, rd=3, imm=-5)) == "li r3, -5"
        assert str(Instruction(Op.RET)) == "ret"


class TestProgramBuilder:
    def test_simple_build(self):
        b = ProgramBuilder("t")
        b.label("main").li(1, 5).halt()
        program = b.build()
        assert len(program) == 2
        assert program.entry() == 0

    def test_forward_reference(self):
        b = ProgramBuilder()
        b.jmp("end").nop().label("end").halt()
        program = b.build()
        assert program.instructions[0].target == 2

    def test_backward_reference(self):
        b = ProgramBuilder()
        b.label("top").nop().jmp("top")
        program = b.build()
        assert program.instructions[1].target == 0

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.jmp("nowhere")
        with pytest.raises(UnresolvedLabelError):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x").nop()
        with pytest.raises(ValueError):
            b.label("x")

    def test_fluent_chaining(self):
        program = (
            ProgramBuilder()
            .li(1, 1)
            .addi(1, 1, 2)
            .halt()
            .build()
        )
        assert len(program) == 3

    def test_all_emitters_produce_valid_instructions(self):
        b = ProgramBuilder()
        b.label("l")
        b.li(1, 5).mov(2, 1).add(3, 1, 2).sub(3, 1, 2).mul(3, 1, 2)
        b.div(3, 1, 2).mod(3, 1, 2).and_(3, 1, 2).or_(3, 1, 2)
        b.xor(3, 1, 2).shl(3, 1, 2).shr(3, 1, 2)
        b.addi(3, 1, 4).muli(3, 1, 4).andi(3, 1, 4)
        b.ld(4, 5, 8).st(4, 5, 8)
        b.beq(1, 2, "l").bne(1, 2, "l").blt(1, 2, "l").bge(1, 2, "l")
        b.jmp("l").call("l").ret().jr(1).push(1).pop(2).nop().halt()
        program = b.build()
        assert len(program) == 29


class TestProgram:
    def test_ip_mapping_roundtrip(self):
        program = ProgramBuilder().nop().nop().halt().build()
        for index in range(3):
            assert program.index_of_ip(program.ip_of(index)) == index

    def test_bad_ip_rejected(self):
        program = ProgramBuilder().halt().build()
        with pytest.raises(ValueError):
            program.index_of_ip(program.code_base + 1)
        with pytest.raises(ValueError):
            program.index_of_ip(program.code_base + 400)

    def test_out_of_range_target_rejected(self):
        with pytest.raises(ValueError):
            Program([Instruction(Op.JMP, target=5)])

    def test_unresolved_target_rejected(self):
        with pytest.raises(UnresolvedLabelError):
            Program([Instruction(Op.JMP, target="oops")])

    def test_entry_by_label(self):
        b = ProgramBuilder()
        b.nop().label("start").halt()
        program = b.build()
        assert program.entry("start") == 1
        with pytest.raises(KeyError):
            program.entry("missing")

    def test_entry_default_main_falls_back_to_zero(self):
        program = ProgramBuilder().halt().build()
        assert program.entry() == 0

    def test_listing_contains_labels_and_mnemonics(self):
        b = ProgramBuilder()
        b.label("main").li(1, 7).halt()
        text = b.build().listing()
        assert "main:" in text
        assert "li r1, 7" in text
