"""Metrics registry: instruments, snapshots, cross-process merge."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    histogram_percentile,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 2.0

    def test_histogram_buckets_and_overflow(self):
        hist = Histogram("h", bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 100.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1]
        assert hist.count == 4
        assert hist.total == pytest.approx(101.05)
        assert hist.mean == pytest.approx(101.05 / 4)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 0.5))

    def test_default_bounds_ascending(self):
        assert list(DEFAULT_LATENCY_BOUNDS_S) == sorted(
            DEFAULT_LATENCY_BOUNDS_S
        )


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_disabled_registry_hands_out_shared_nulls(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        counter.inc()
        registry.gauge("g").set(9.0)
        registry.histogram("h").observe(1.0)
        # Nothing was registered and nothing mutated.
        assert len(registry) == 0
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("feeds").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("wait", bounds=(1.0, 2.0)).observe(1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"feeds": 3}
        assert snap["gauges"] == {"depth": 2.0}
        assert snap["histograms"]["wait"] == {
            "bounds": [1.0, 2.0], "counts": [0, 1, 0],
            "sum": 1.5, "count": 1,
        }

    def test_merge_adds_counters_buckets_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("feeds").inc(3)
        registry.gauge("in_flight").set(2.0)
        registry.histogram("wait", bounds=(1.0, 2.0)).observe(0.5)
        snap = registry.snapshot()

        merged = MetricsRegistry()
        merged.merge(snap)
        merged.merge(snap)
        out = merged.snapshot()
        assert out["counters"]["feeds"] == 6
        assert out["gauges"]["in_flight"] == 4.0  # occupancies sum
        assert out["histograms"]["wait"]["counts"] == [2, 0, 0]
        assert out["histograms"]["wait"]["count"] == 2
        assert out["histograms"]["wait"]["sum"] == pytest.approx(1.0)

    def test_merge_rejects_mismatched_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("wait", bounds=(1.0, 2.0)).observe(0.5)
        other = MetricsRegistry()
        other.histogram("wait", bounds=(5.0, 6.0))
        with pytest.raises(ValueError):
            other.merge(registry.snapshot())

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert len(registry) == 0

    def test_global_registry_is_shared(self):
        assert global_registry() is global_registry()


class TestHistogramPercentile:
    def test_empty_returns_none(self):
        record = {"bounds": [1.0], "counts": [0, 0], "count": 0, "sum": 0}
        assert histogram_percentile(record, 0.5) is None

    def test_returns_bucket_upper_edge(self):
        hist = Histogram("h", bounds=(0.1, 0.2, 0.4))
        for _ in range(90):
            hist.observe(0.05)
        for _ in range(10):
            hist.observe(0.3)
        record = {
            "bounds": list(hist.bounds), "counts": list(hist.counts),
            "sum": hist.total, "count": hist.count,
        }
        assert histogram_percentile(record, 0.50) == 0.1
        assert histogram_percentile(record, 0.99) == 0.4

    def test_overflow_answers_last_finite_edge(self):
        record = {"bounds": [1.0], "counts": [0, 5], "count": 5, "sum": 50}
        assert histogram_percentile(record, 0.99) == 1.0

    def test_rejects_out_of_range_q(self):
        record = {"bounds": [1.0], "counts": [1, 0], "count": 1, "sum": 1}
        with pytest.raises(ValueError):
            histogram_percentile(record, 1.5)
