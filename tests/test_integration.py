"""End-to-end integration tests reproducing the paper's qualitative claims
on freshly generated traces (workload -> CPU -> trace -> predictor)."""

import pytest

from repro.eval.runner import run_predictor
from repro.pipeline import PipelinedPredictor
from repro.predictors import (
    CAPConfig,
    CAPPredictor,
    HybridPredictor,
    LastAddressPredictor,
    StrideConfig,
    StridePredictor,
)
from repro.timing import simulate, speedup
from repro.workloads import (
    ArraySumWorkload,
    CallPatternWorkload,
    LinkedListWorkload,
    ListEvalWorkload,
    trace_workload,
)


@pytest.fixture(scope="module")
def rds_trace():
    return trace_workload(
        ListEvalWorkload(seed=11), max_instructions=60_000
    )


@pytest.fixture(scope="module")
def array_trace():
    return trace_workload(
        ArraySumWorkload(seed=11, elements=2048), max_instructions=60_000
    )


class TestSection2Claims:
    def test_rds_loads_have_recurring_nonstride_patterns(self, rds_trace):
        """The xlisp-style loads are stride-hopeless but context-learnable."""
        stream = rds_trace.predictor_stream()
        stride = run_predictor(StridePredictor(), stream)
        cap = run_predictor(CAPPredictor(), stream)
        assert cap.prediction_rate > stride.prediction_rate + 0.25

    def test_control_correlated_loads(self):
        trace = trace_workload(CallPatternWorkload(seed=11),
                               max_instructions=50_000)
        stream = trace.predictor_stream()
        cap = run_predictor(CAPPredictor(), stream)
        assert cap.prediction_rate > 0.5


class TestSection3Claims:
    def test_hybrid_dominates_components(self, rds_trace, array_trace):
        """Hybrid >= max(stride, CAP) on each pattern family."""
        for trace in (rds_trace, array_trace):
            stream = trace.predictor_stream()
            stride = run_predictor(StridePredictor(), stream)
            cap = run_predictor(CAPPredictor(), stream)
            hybrid = run_predictor(HybridPredictor(), stream)
            assert hybrid.prediction_rate >= max(
                stride.prediction_rate, cap.prediction_rate) - 0.02

    def test_global_correlation_helps_in_aggregate(self):
        """Figure 9's headline: base-address links beat real-address links
        on aggregate.  (On a tiny solo-learnable trace the real mode can be
        perfect, so the win only shows across a workload mix — exactly how
        the paper reports it.)"""
        from repro.workloads import DesktopWorkload

        base_total = real_total = None
        for workload in (
            LinkedListWorkload("l2", seed=12, length=24),
            LinkedListWorkload("l3", seed=15, length=32),
            DesktopWorkload(seed=14, handlers=48, loads_per_handler=10,
                            queue_len=60),
        ):
            stream = trace_workload(
                workload, max_instructions=40_000
            ).predictor_stream()
            base = run_predictor(
                CAPPredictor(CAPConfig(correlation="base")), stream
            )
            real = run_predictor(
                CAPPredictor(CAPConfig(correlation="real")), stream
            )
            if base_total is None:
                base_total, real_total = base, real
            else:
                base_total.add(base)
                real_total.add(real)
        assert base_total.correct_rate >= real_total.correct_rate - 0.01

    def test_tags_cut_mispredictions(self, rds_trace):
        """Figure 10's headline: LT tags trade few predictions for far
        fewer mispredictions."""
        from repro.predictors.confidence import CFI_OFF
        from repro.predictors.link_table import LinkTableConfig

        stream = rds_trace.predictor_stream()
        untagged = run_predictor(
            CAPPredictor(CAPConfig(cfi_mode=CFI_OFF,
                                   lt=LinkTableConfig(tag_bits=0))),
            stream,
        )
        tagged = run_predictor(
            CAPPredictor(CAPConfig(cfi_mode=CFI_OFF,
                                   lt=LinkTableConfig(tag_bits=8))),
            stream,
        )
        assert tagged.misprediction_rate <= untagged.misprediction_rate


class TestSection4Claims:
    def test_last_address_handles_constants_only(self, array_trace):
        stream = array_trace.predictor_stream()
        last = run_predictor(LastAddressPredictor(), stream)
        stride = run_predictor(StridePredictor(StrideConfig.basic()), stream)
        assert stride.prediction_rate > last.prediction_rate

    def test_accuracy_stays_high(self, rds_trace, array_trace):
        """The enhanced predictors keep accuracy near the paper's ~99%."""
        for trace in (rds_trace, array_trace):
            metrics = run_predictor(HybridPredictor(),
                                    trace.predictor_stream())
            assert metrics.accuracy > 0.95


class TestSection5Claims:
    def test_gap_degrades_gracefully(self, rds_trace):
        stream = rds_trace.predictor_stream()
        imm = run_predictor(PipelinedPredictor(HybridPredictor(), 0), stream)
        gap8 = run_predictor(PipelinedPredictor(HybridPredictor(), 8), stream)
        assert gap8.prediction_rate <= imm.prediction_rate + 0.01
        assert gap8.prediction_rate > 0.3 * imm.prediction_rate

    def test_pipelined_predictor_still_speeds_up(self, rds_trace):
        base = simulate(rds_trace)
        pred = simulate(rds_trace, PipelinedPredictor(HybridPredictor(), 8))
        assert speedup(base, pred) > 1.02


class TestRDSSpeedupClaim:
    def test_pointer_chase_gains_more_than_arrays(self):
        """Section 2: address prediction on RDS is the parallelism enabler,
        so its speedup beats the stride case."""
        list_trace = trace_workload(
            LinkedListWorkload(seed=11, via_global_ptr=False, length=24),
            max_instructions=40_000,
        )
        arr_trace = trace_workload(
            ArraySumWorkload(seed=11, elements=2048),
            max_instructions=40_000,
        )
        list_speedup = speedup(
            simulate(list_trace), simulate(list_trace, HybridPredictor())
        )
        arr_speedup = speedup(
            simulate(arr_trace), simulate(arr_trace, HybridPredictor())
        )
        assert list_speedup > arr_speedup
