"""Regression tests for the incomplete-``reset()`` bug class (R001).

PR 3's differential verifier caught ``PipelinedPredictor.reset()``
leaving its embedded branch predictor and flush counter trained; the
R001 lint rule found the same latent pattern in the timing layer
(``CacheLevel``/``CacheHierarchy``/``StridePrefetcher`` had *no* reset
at all) and in the value predictors.  Each test here pins the fix the
same way the PR 3 pattern did: state is exercised, reset, and the
object must then behave bit-identically to a freshly constructed one.
"""

import pytest

from repro.predictors.value_prediction import (
    LastValuePredictor,
    StrideValuePredictor,
    ValuePredictorConfig,
)
from repro.timing.cache import CacheConfig, CacheHierarchy, CacheLevel
from repro.timing.prefetch import PrefetchConfig, StridePrefetcher


def _exercise_level(level, base=0x1000):
    """A reuse-heavy access pattern with both hits and misses."""
    pattern = [base + 32 * i for i in range(64)] + [base, base + 32, base]
    return [level.access(addr) for addr in pattern]


class TestCacheLevelReset:
    def test_statistics_cleared(self):
        level = CacheLevel(CacheConfig(size_bytes=1024, line_bytes=32, ways=2))
        _exercise_level(level)
        assert level.hits > 0 and level.misses > 0
        level.reset()
        assert level.hits == 0
        assert level.misses == 0
        assert level.hit_rate == 0.0

    def test_behaves_like_fresh_instance(self):
        config = CacheConfig(size_bytes=1024, line_bytes=32, ways=2)
        reused = CacheLevel(config)
        _exercise_level(reused)
        reused.reset()

        fresh = CacheLevel(config)
        assert _exercise_level(reused) == _exercise_level(fresh)
        assert (reused.hits, reused.misses) == (fresh.hits, fresh.misses)

    def test_lines_invalidated(self):
        level = CacheLevel(CacheConfig(size_bytes=1024, line_bytes=32, ways=2))
        assert level.access(0x2000) is False  # cold miss
        assert level.access(0x2000) is True   # now resident
        level.reset()
        assert level.access(0x2000) is False  # resident line must be gone


class TestCacheHierarchyReset:
    def test_latencies_match_fresh_instance(self):
        def run(h):
            return [h.access(0x4000 + 32 * (i % 40)) for i in range(200)]

        reused = CacheHierarchy()
        run(reused)
        reused.reset()

        fresh = CacheHierarchy()
        assert run(reused) == run(fresh)
        assert reused.l1.hits == fresh.l1.hits
        assert reused.l2.misses == fresh.l2.misses


class TestStridePrefetcherReset:
    @staticmethod
    def _drive(prefetcher, caches, loads=50):
        for i in range(loads):
            prefetcher.observe(0x100, 0x8000 + 64 * i, caches)

    def test_issue_count_and_table_cleared(self):
        prefetcher = StridePrefetcher(PrefetchConfig(entries=64, ways=2))
        self._drive(prefetcher, CacheHierarchy())
        assert prefetcher.issued > 0
        assert len(prefetcher.table) > 0
        prefetcher.reset()
        assert prefetcher.issued == 0
        assert len(prefetcher.table) == 0

    def test_behaves_like_fresh_instance(self):
        config = PrefetchConfig(entries=64, ways=2)
        reused = StridePrefetcher(config)
        self._drive(reused, CacheHierarchy())
        reused.reset()

        fresh = StridePrefetcher(config)
        self._drive(reused, CacheHierarchy())
        self._drive(fresh, CacheHierarchy())
        # A trained-but-unreset table would keep its confident strides and
        # issue prefetches from the very first observation again.
        assert reused.issued == fresh.issued


@pytest.mark.parametrize(
    "predictor_class", [LastValuePredictor, StrideValuePredictor]
)
class TestValuePredictorReset:
    def test_tables_forgotten(self, predictor_class):
        predictor = predictor_class(ValuePredictorConfig(entries=64, ways=2))
        for i in range(20):
            predictor.update(0x40, 100 + 4 * i)
        value, _ = predictor.predict(0x40)
        assert value is not None
        predictor.reset()
        assert predictor.predict(0x40) == (None, False)

    def test_behaves_like_fresh_instance(self, predictor_class):
        config = ValuePredictorConfig(entries=64, ways=2)

        def run(p):
            out = []
            for i in range(30):
                out.append(p.predict(0x80))
                p.update(0x80, 7 * i)
            return out

        reused = predictor_class(config)
        run(reused)
        reused.reset()
        fresh = predictor_class(config)
        assert run(reused) == run(fresh)
