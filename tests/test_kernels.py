"""Batch kernel tests: segops units, backend resolution, scalar parity.

The parity tests here are the committed distillation of the exhaustive
harness used to bring the kernels up: each predictor family runs the same
randomised stream through the scalar ``run_on_columns`` reference and the
batch kernel path, then compares metrics, per-access observer records,
control-flow state, full table dumps (tags, LRU stamps, confidence, CFI
machines, Link Table entries) and attribution-probe counters.  The
four-way differential harness (``tests/test_verify.py``) covers the same
ground on the registered variants; this file pins the kernel layer's own
API surface — dispatch gates, fallbacks, warm-up folding — and the
segmented-array primitives the kernels are built from.
"""

import random

import numpy as np
import pytest

from repro.common.bitops import fold_xor
from repro.eval.metrics import PredictorMetrics
from repro.serve.session import run_on_columns
from repro.kernels import (
    BACKEND_ENV,
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    available_backends,
    batch_records,
    fold_metrics,
    resolve_backend,
    run_batch,
    supports_batch,
    try_run_batch,
)
from repro.kernels.segops import (
    fold_xor_array,
    group_sort,
    seg_clamped_walk,
    seg_exclusive_cumsum,
    seg_last_index_where,
    seg_shift,
    seg_streak_before,
    segment_starts,
)
from repro.predictors.cap import CAPConfig, CAPPredictor
from repro.predictors.gshare_address import (
    HISTORY_CALL_PATH,
    GShareAddressConfig,
    GShareAddressPredictor,
)
from repro.predictors.hybrid import HybridConfig, HybridPredictor
from repro.predictors.last_address import LastAddressConfig, LastAddressPredictor
from repro.predictors.link_table import LinkTableConfig
from repro.predictors.stride import StrideConfig, StridePredictor
from repro.telemetry.instrumentation import AttributionProbe, instrument_predictor
from repro.trace.trace import PredictorStream


# ---------------------------------------------------------------------------
# Stream generation (mirrors the differential harness's mixed profile).

def make_stream(rng, n_events, n_keys, correlated=0.6):
    tag, ip, a, b = [], [], [], []
    last = {}
    for _ in range(n_events):
        r = rng.random()
        if r < 0.55:
            k = rng.randrange(n_keys)
            the_ip = 0x1000 + 4 * k
            if k in last and rng.random() < correlated:
                addr = last[k]
                if rng.random() < 0.3:
                    addr = (addr + 8) & 0xFFFFFFFF
            else:
                addr = rng.randrange(1 << 32) & ~3
            last[k] = addr
            tag.append(1), ip.append(the_ip), a.append(addr), b.append(addr & 0xFF)
        elif r < 0.85:
            tag.append(0), ip.append(0x2000 + 4 * rng.randrange(16))
            a.append(rng.randrange(2)), b.append(0)
        elif r < 0.95:
            tag.append(2), ip.append(0x3000 + 4 * rng.randrange(8))
            a.append(0), b.append(0)
        else:
            tag.append(3), ip.append(0x3000 + 4 * rng.randrange(8))
            a.append(0), b.append(0)
    return PredictorStream(tag, ip, a, b)


def metrics_tuple(m):
    return (m.loads, m.predictions, m.correct_predictions,
            m.speculative, m.correct_speculative)


# ---------------------------------------------------------------------------
# Architectural state dumps, one per predictor family.

def la_dump(p):
    t = p.table
    out = {}
    for si, ways in enumerate(t._sets):
        for wi, w in enumerate(ways):
            if w.tag is not None:
                out[(si, wi)] = (w.tag, w.lru, w.entry.last_addr,
                                 w.entry.confidence.value)
    return (out, (t.hits, t.misses, t.evictions, t._clock))


def gs_dump(p):
    t = p.table
    out = {i: (e.address, e.confidence.value)
           for i, e in enumerate(t._slots) if e is not None}
    return (out, (t.conflict_writes,))


def st_dump(p):
    t = p.table
    out = {}
    for si, ways in enumerate(t._sets):
        for wi, w in enumerate(ways):
            if w.tag is not None:
                s = w.entry
                out[(si, wi)] = (
                    w.tag, w.lru, s.last_addr, s.stride, s.last_delta,
                    s.confidence.value, s.cfi._bad_pattern, s.cfi._path_bad,
                    s.run_length, s.interval, s.spec_last_addr,
                    s.pending, s.suppress,
                )
    return (out, (t.hits, t.misses, t.evictions, t._clock))


def _lt_dump(lt):
    state = {}
    for si, ways in enumerate(lt._sets):
        for wi, e in enumerate(ways):
            if e.link is not None or e.pf is not None:
                state[(si, wi)] = (e.link, e.tag, e.pf, e.stamp)
    pf_tab = None
    if lt._pf_table is not None:
        pf_tab = {i: v for i, v in enumerate(lt._pf_table) if v is not None}
    stats = (lt.lookups, lt.tag_mismatches, lt.pf_rejections,
             lt.link_writes, lt._clock)
    return state, pf_tab, stats


def _cap_entry(s):
    return (s.offset, s.history, s.confidence.value, s.cfi._bad_pattern,
            s.cfi._path_bad, s.last_addr, s.spec_history, s.pending, s.suppress)


def cap_dump(p):
    t = p.load_buffer
    out = {}
    for si, ways in enumerate(t._sets):
        for wi, w in enumerate(ways):
            if w.tag is not None:
                out[(si, wi)] = (w.tag, w.lru) + _cap_entry(w.entry)
    lt_state, pf_tab, lt_stats = _lt_dump(p.component.link_table)
    return (out, lt_state, pf_tab,
            (t.hits, t.misses, t.evictions, t._clock) + lt_stats)


def hy_dump(p):
    t = p.load_buffer
    out = {}
    for si, ways in enumerate(t._sets):
        for wi, w in enumerate(ways):
            if w.tag is not None:
                e = w.entry
                s = e.stride
                out[(si, wi)] = (
                    (w.tag, w.lru) + _cap_entry(e.cap)
                    + (s.last_addr, s.stride, s.last_delta, s.confidence.value,
                       s.cfi._bad_pattern, s.cfi._path_bad, s.run_length,
                       s.interval, s.spec_last_addr, s.pending, s.suppress,
                       e.selector.value)
                )
    lt_state, pf_tab, lt_stats = _lt_dump(p.cap.link_table)
    ss = p.selector_stats
    sel = (dict(ss.states.counts), ss.selection.hits, ss.selection.total,
           ss.dual_speculative, ss.speculative)
    return (out, lt_state, pf_tab, sel,
            (t.hits, t.misses, t.evictions, t._clock) + lt_stats)


def _lt(**kw):
    return LinkTableConfig(ways=1, **kw)


# (name, factory, dump) — families and mechanism corners, including tiny
# tables whose sets overflow (the generation-grouped LRU solver's domain).
ROSTER = [
    ("la-default",
     lambda: LastAddressPredictor(LastAddressConfig(entries=1024, ways=4)),
     la_dump),
    ("la-hyst-tiny",
     lambda: LastAddressPredictor(LastAddressConfig(
         entries=8, ways=2, hysteresis=True,
         confidence_max=5, confidence_threshold=3)),
     la_dump),
    ("gshare-branch",
     lambda: GShareAddressPredictor(GShareAddressConfig(
         entries=256, history_bits=6)),
     gs_dump),
    ("gshare-path",
     lambda: GShareAddressPredictor(GShareAddressConfig(
         entries=128, history_mode=HISTORY_CALL_PATH, history_bits=8,
         confidence_max=4, confidence_threshold=1)),
     gs_dump),
    ("stride-enhanced",
     lambda: StridePredictor(StrideConfig(entries=512, ways=4)),
     st_dump),
    ("stride-basic-tiny",
     lambda: StridePredictor(StrideConfig.basic(entries=8, ways=4)),
     st_dump),
    ("stride-paths-dm",
     lambda: StridePredictor(StrideConfig(
         entries=16, ways=1, cfi_mode="paths", cfi_bits=3)),
     st_dump),
    ("cap-base",
     lambda: CAPPredictor(CAPConfig(
         lb_entries=512, lb_ways=4,
         lt=_lt(entries=128, tag_bits=6, pf_bits=2))),
     cap_dump),
    ("cap-delta-tiny",
     lambda: CAPPredictor(CAPConfig(
         lb_entries=16, lb_ways=4, correlation="delta",
         lt=_lt(entries=32, tag_bits=0, pf_bits=0))),
     cap_dump),
    ("cap-decoupled",
     lambda: CAPPredictor(CAPConfig(
         lb_entries=512, lb_ways=4,
         lt=_lt(entries=128, tag_bits=6, pf_bits=3,
                pf_decoupled=True, pf_table_entries=512))),
     cap_dump),
    ("hybrid-default",
     lambda: HybridPredictor(HybridConfig(
         lb_entries=512, lb_ways=4,
         cap=CAPConfig(lt=_lt(entries=128, tag_bits=6, pf_bits=2)))),
     hy_dump),
    ("hybrid-stride-correct-tiny",
     lambda: HybridPredictor(HybridConfig(
         lb_entries=8, lb_ways=2, lt_update_policy="unless_stride_correct",
         cap=CAPConfig(lt=_lt(entries=64, tag_bits=4, pf_bits=2)))),
     hy_dump),
    ("hybrid-static-cap",
     lambda: HybridPredictor(HybridConfig(
         lb_entries=256, lb_ways=8, static_selector="cap",
         cap=CAPConfig(correlation="delta",
                       lt=_lt(entries=256, tag_bits=0, pf_bits=0)))),
     hy_dump),
]


# ---------------------------------------------------------------------------
# Segmented-primitive unit tests against direct scalar loops.

class TestSegops:
    def _segments(self, seed, n=400, n_keys=17):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, n_keys, size=n)
        order, starts = group_sort(keys)
        assert np.array_equal(starts, segment_starts(keys[order]))
        return rng, keys[order], starts

    def test_group_sort_is_stable_and_marks_heads(self):
        keys = np.array([3, 1, 3, 3, 1, 0, 1], dtype=np.int64)
        order, starts = group_sort(keys)
        grouped = keys[order]
        # Grouped keys are non-decreasing, original order kept within a key.
        assert grouped.tolist() == sorted(keys.tolist())
        for k in set(keys.tolist()):
            positions = order[grouped == k]
            assert positions.tolist() == sorted(positions.tolist())
        assert starts.tolist() == [True, True, False, False, True, False, False]

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        order, starts = group_sort(empty)
        assert len(order) == 0 and len(starts) == 0
        assert len(seg_shift(empty, starts.astype(bool), -1)) == 0
        assert len(seg_clamped_walk(empty, starts.astype(bool), 0, 3, 0)) == 0

    def test_seg_shift(self):
        _, keys, starts = self._segments(0)
        values = np.arange(len(keys), dtype=np.int64)
        out = seg_shift(values, starts, -7)
        for i in range(len(keys)):
            assert out[i] == (-7 if starts[i] else values[i - 1])

    def test_seg_exclusive_cumsum(self):
        rng, keys, starts = self._segments(1)
        values = rng.integers(0, 5, size=len(keys))
        out = seg_exclusive_cumsum(values, starts)
        acc = 0
        for i in range(len(keys)):
            if starts[i]:
                acc = 0
            assert out[i] == acc
            acc += values[i]

    def test_seg_last_index_where(self):
        rng, keys, starts = self._segments(2)
        mask = rng.random(len(keys)) < 0.3
        out = seg_last_index_where(mask, starts)
        last = -1
        for i in range(len(keys)):
            if starts[i]:
                last = -1
            if mask[i]:
                last = i
            assert out[i] == last

    def test_seg_streak_before(self):
        rng, keys, starts = self._segments(3)
        correct = rng.random(len(keys)) < 0.6
        out = seg_streak_before(correct, starts)
        streak = 0
        for i in range(len(keys)):
            if starts[i]:
                streak = 0
            assert out[i] == streak
            streak = streak + 1 if correct[i] else 0

    @pytest.mark.parametrize("low,high,initial", [(0, 3, 0), (0, 7, 5), (-2, 2, 0)])
    def test_seg_clamped_walk(self, low, high, initial):
        rng, keys, starts = self._segments(4 + high)
        delta = rng.integers(-2, 3, size=len(keys))
        out = seg_clamped_walk(delta, starts, low, high, initial)
        value = initial
        for i in range(len(keys)):
            if starts[i]:
                value = initial
            value = min(high, max(low, value + int(delta[i])))
            assert out[i] == value

    @pytest.mark.parametrize("width", [1, 4, 9, 16])
    def test_fold_xor_array_matches_scalar(self, width):
        rng = np.random.default_rng(width)
        values = rng.integers(0, 1 << 40, size=200)
        out = fold_xor_array(values, width)
        for v, f in zip(values.tolist(), out.tolist()):
            assert f == fold_xor(v, width)

    def test_fold_xor_array_terminates_on_negative_int64(self):
        """Regression: an un-canonicalised address at or above ``2**63``
        arrives as a *negative* int64, and the fold loop's arithmetic
        ``>>`` converged to ``-1`` instead of ``0`` — it never
        terminated.  The kernel now drops the sign bit at entry, which
        is the identity on canonical (63-bit) addresses."""
        values = np.array([-1, -(2**62), 2**63 - 1, 0], dtype=np.int64)
        out = fold_xor_array(values, 8)
        canonical = values.astype(np.int64) & np.int64((1 << 63) - 1)
        for v, f in zip(canonical.tolist(), out.tolist()):
            assert f == fold_xor(v, 8)


# ---------------------------------------------------------------------------
# Backend resolution and dispatch gates.

class TestBackendResolution:
    def test_python_always_available(self):
        assert BACKEND_PYTHON in available_backends()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, BACKEND_NUMPY)
        assert resolve_backend(BACKEND_PYTHON) == BACKEND_PYTHON

    def test_env_variable_forces(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_backend() == BACKEND_PYTHON
        monkeypatch.setenv(BACKEND_ENV, " NUMPY ")  # normalised
        assert resolve_backend() == BACKEND_NUMPY

    def test_default_feature_detects_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        # numpy imports in this suite, so detection must pick it.
        assert resolve_backend() == BACKEND_NUMPY

    def test_unknown_backend_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "fortran")
        with pytest.raises(ValueError):
            resolve_backend()


class TestDispatchGates:
    def _predictor(self):
        return LastAddressPredictor(LastAddressConfig(entries=64, ways=2))

    def _stream(self, n=300):
        return make_stream(random.Random(11), n, 9)

    def test_supports_batch_flags(self):
        assert supports_batch(self._predictor())

        class Scalar:
            pass

        assert not supports_batch(Scalar())

    def test_python_backend_declines(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, BACKEND_PYTHON)
        m = PredictorMetrics()
        assert not try_run_batch(self._predictor(), self._stream(), m)
        assert m.loads == 0

    def test_observer_declines(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, BACKEND_NUMPY)
        m = PredictorMetrics()
        ran = try_run_batch(self._predictor(), self._stream(), m,
                            observer=lambda *a: None)
        assert not ran

    def test_numpy_backend_runs_and_records(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, BACKEND_NUMPY)
        m = PredictorMetrics()
        assert try_run_batch(self._predictor(), self._stream(), m)
        assert m.backend == BACKEND_NUMPY
        assert m.loads > 0

    def test_associative_lt_falls_back(self):
        p = CAPPredictor(CAPConfig(
            lb_entries=64, lb_ways=2,
            lt=LinkTableConfig(entries=64, ways=2, tag_bits=4, pf_bits=2)))
        assert run_batch(p, self._stream(), 0) is None

    def test_unless_stride_selected_falls_back(self):
        p = HybridPredictor(HybridConfig(
            lb_entries=64, lb_ways=2, lt_update_policy="unless_stride_selected",
            cap=CAPConfig(lt=_lt(entries=64, tag_bits=4, pf_bits=2))))
        assert run_batch(p, self._stream(), 0) is None

    def test_run_on_columns_routes_per_backend(self, monkeypatch):
        stream = self._stream()
        monkeypatch.setenv(BACKEND_ENV, BACKEND_NUMPY)
        m_fast = PredictorMetrics()
        run_on_columns(self._predictor(), stream, m_fast)
        monkeypatch.setenv(BACKEND_ENV, BACKEND_PYTHON)
        m_ref = PredictorMetrics()
        run_on_columns(self._predictor(), stream, m_ref)
        assert m_fast.backend == BACKEND_NUMPY
        assert m_ref.backend == BACKEND_PYTHON
        assert metrics_tuple(m_fast) == metrics_tuple(m_ref)


# ---------------------------------------------------------------------------
# Kernel-vs-scalar parity: metrics, records, tables, probes.

def _run_both(factory, stream, warmup):
    scalar = factory()
    probe_s = AttributionProbe()
    instrument_predictor(scalar, probe_s)
    m_scalar = PredictorMetrics()
    records = []
    run_on_columns(
        scalar, stream, m_scalar, warmup_loads=warmup,
        observer=lambda ip, off, act, pr: records.append(
            (ip, off, act, pr.address, pr.speculative, pr.source)))

    batch = factory()
    probe_b = AttributionProbe()
    instrument_predictor(batch, probe_b)
    m_batch = PredictorMetrics()
    result = run_batch(batch, stream, warmup)
    assert result is not None, "kernel unexpectedly fell back"
    fold_metrics(result, m_batch, warmup)
    return (scalar, m_scalar, records, probe_s,
            batch, m_batch, batch_records(result, stream), probe_b)


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("name,factory,dump", ROSTER,
                         ids=[r[0] for r in ROSTER])
def test_kernel_matches_scalar(name, factory, dump, seed):
    rng = random.Random(1000 * seed + hash(name) % 97)
    stream = make_stream(rng, 1500, rng.choice([5, 23, 150]),
                         correlated=rng.choice([0.4, 0.8]))
    warmup = rng.choice([0, 40])
    (scalar, m_scalar, records, probe_s,
     batch, m_batch, brecords, probe_b) = _run_both(factory, stream, warmup)
    assert metrics_tuple(m_scalar) == metrics_tuple(m_batch)
    assert records == brecords
    assert (scalar.ghr, scalar.call_path) == (batch.ghr, batch.call_path)
    assert dump(scalar) == dump(batch)
    assert probe_s.as_dict() == probe_b.as_dict()


@pytest.mark.parametrize("events", [0, 1, 7])
def test_kernel_matches_scalar_degenerate_streams(events):
    stream = make_stream(random.Random(5), events, 3)
    _, m_scalar, records, _, _, m_batch, brecords, _ = _run_both(
        lambda: StridePredictor(StrideConfig(entries=64, ways=2)), stream, 0)
    assert metrics_tuple(m_scalar) == metrics_tuple(m_batch)
    assert records == brecords


def test_warmup_beyond_stream_counts_nothing():
    stream = make_stream(random.Random(6), 400, 7)
    _, m_scalar, _, _, _, m_batch, _, _ = _run_both(
        lambda: LastAddressPredictor(LastAddressConfig(entries=64, ways=2)),
        stream, 10**9)
    assert metrics_tuple(m_scalar) == metrics_tuple(m_batch)
    assert m_batch.loads == 0 and m_batch.predictions == 0
