"""Load generator: percentile math, report schema, end-to-end smoke."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
LOADGEN = REPO_ROOT / "benchmarks" / "loadgen.py"


def _loadgen_module():
    spec = importlib.util.spec_from_file_location("loadgen", LOADGEN)
    module = importlib.util.module_from_spec(spec)
    # Registered before exec: dataclass field resolution looks the
    # module up in sys.modules.
    sys.modules["loadgen"] = module
    spec.loader.exec_module(module)
    return module


class TestPercentiles:
    def test_empty_is_none(self):
        lg = _loadgen_module()
        assert lg.percentile([], 0.5) is None
        summary = lg.latency_summary([])
        assert summary == {
            "p50": None, "p90": None, "p99": None, "mean": None, "max": None,
        }

    def test_single_value(self):
        lg = _loadgen_module()
        assert lg.percentile([7.0], 0.5) == 7.0
        assert lg.percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        lg = _loadgen_module()
        values = [float(v) for v in range(1, 101)]
        assert lg.percentile(values, 0.50) == 51.0
        assert lg.percentile(values, 0.99) == 99.0
        assert lg.percentile(values, 1.0) == 100.0

    def test_summary_fields(self):
        lg = _loadgen_module()
        summary = lg.latency_summary([3.0, 1.0, 2.0])
        assert summary["p50"] == 2.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)


class TestArgs:
    def test_ramp_parsing(self):
        lg = _loadgen_module()
        args = lg.parse_args(["--ramp", "1,2,8"])
        assert args.ramp_steps == [1, 2, 8]

    def test_bad_ramp_rejected(self):
        lg = _loadgen_module()
        with pytest.raises(SystemExit):
            lg.parse_args(["--ramp", "0,2"])


class TestEndToEnd:
    def test_spawn_smoke_writes_valid_report(self, tmp_path):
        """The CI smoke scenario: spawn, burst, schema-valid report,
        zero dropped sessions."""
        out = tmp_path / "slo_report.json"
        completed = subprocess.run(
            [
                sys.executable, str(LOADGEN), "--spawn",
                "--ramp", "1", "--events-per-feed", "80",
                "--feeds-per-session", "2",
                "--output", str(out), "--require-zero-drops",
            ],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=180,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr

        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["schema"] == "repro.slo_report/v1"
        assert report["totals"]["dropped_sessions"] == 0
        assert report["totals"]["errors"] == 0
        assert report["slo"]["p50_ms"] is not None

        from repro.telemetry.stats import check_slo_report, render_slo_report

        assert check_slo_report(out) == []
        rendered = render_slo_report(out)
        assert "SLO:" in rendered and "dropped=0" in rendered

    def test_spawn_with_admin_joins_server_obs_and_exports_trace(
        self, tmp_path
    ):
        """The observability CI scenario: spawn with an admin endpoint,
        scrape server-side queue-wait into the report, export a
        schema-valid span file whose trace ids are the loadgen ones."""
        out = tmp_path / "slo_report.json"
        trace_out = tmp_path / "trace.json"
        completed = subprocess.run(
            [
                sys.executable, str(LOADGEN), "--spawn", "--admin",
                "--ramp", "1,2", "--events-per-feed", "80",
                "--feeds-per-session", "2",
                "--output", str(out),
                "--trace-export", str(trace_out),
                "--require-zero-drops", "--require-server-obs",
            ],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=180,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "admin=" in completed.stdout

        report = json.loads(out.read_text(encoding="utf-8"))
        obs = report["server_obs"]
        assert obs is not None
        assert obs["queue_wait_ms"]["count"] > 0
        assert obs["queue_wait_ms"]["p50"] is not None
        assert obs["sessions_dropped"] == 0
        assert obs["spans_exported"] > 0

        from repro.obs.tracing import validate_trace_export
        from repro.telemetry.stats import check_slo_report, render_slo_report

        assert check_slo_report(out) == []
        assert "queue-wait" in render_slo_report(out)

        document = json.loads(trace_out.read_text(encoding="utf-8"))
        assert validate_trace_export(document) == []
        traces = {
            (e.get("args") or {}).get("trace")
            for e in document["traceEvents"]
        }
        # Client request ids join server spans across the queue hop.
        assert any(t and t.startswith("lg0-") for t in traces)

    def test_server_obs_section_is_optional_in_schema(self):
        lg = _loadgen_module()
        from repro.telemetry.schema import load_schema, validate

        schema = load_schema(lg.SLO_SCHEMA_PATH)
        base = {
            "schema": "repro.slo_report/v1",
            "server": {"host": "h", "port": 1, "spawned": False},
            "workload": {"profile": "mixed", "seed": 0, "mode": "closed",
                         "events_per_feed": 1, "feeds_per_session": 1},
            "steps": [], "totals": {"sessions": 0, "feeds": 0, "loads": 0,
                                    "errors": 0, "dropped_sessions": None},
            "slo": {"p50_ms": None, "p99_ms": None, "throughput_lps": None},
        }
        assert validate(base, schema) == []
        assert validate({**base, "server_obs": None}, schema) == []
        assert validate({**base, "server_obs": {
            "admin_port": 1,
            "queue_wait_ms": {"count": 0},
        }}, schema) == []
        assert validate({**base, "server_obs": {"admin_port": 1}}, schema)

    def test_stats_slo_cli_rejects_invalid(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}', encoding="utf-8")
        env = {"PYTHONPATH": str(REPO_ROOT / "src")}
        import os
        env = {**os.environ, **env}
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "slo", str(bad)],
            cwd=REPO_ROOT, capture_output=True, text=True, env=env,
            timeout=60,
        )
        assert completed.returncode == 2
        assert "schema" in completed.stderr
