"""Tests for the extra (non-roster) workloads and their predictor behaviour."""

import pytest

from repro.eval.runner import run_predictor
from repro.predictors import CAPPredictor, HybridPredictor, StridePredictor
from repro.predictors.base import lb_key
from repro.workloads import (
    MutatingListWorkload,
    QuickSortWorkload,
    RingBufferWorkload,
    SparseMatVecWorkload,
    trace_workload,
)

ALL = [
    QuickSortWorkload, MutatingListWorkload, RingBufferWorkload,
    SparseMatVecWorkload,
]


@pytest.mark.parametrize("cls", ALL)
class TestBasics:
    def test_builds_and_runs(self, cls):
        trace = trace_workload(cls(seed=3), max_instructions=5000)
        assert len(trace) == 5000
        assert trace.summary().loads > 0

    def test_deterministic(self, cls):
        t1 = trace_workload(cls(seed=7), max_instructions=3000)
        t2 = trace_workload(cls(seed=7), max_instructions=3000)
        assert t1.addr == t2.addr


class TestQuickSort:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuickSortWorkload(elements=2)

    def test_data_dependent_branches(self):
        """The compare/swap branches must be genuinely data-dependent."""
        trace = trace_workload(QuickSortWorkload(seed=3), max_instructions=30_000)
        takens = [
            trace.taken[i] for i in range(len(trace)) if trace.kind[i] == 3
        ]
        taken_rate = sum(takens) / len(takens)
        assert 0.1 < taken_rate < 0.95


class TestMutatingList:
    def test_retraining_cost_visible(self):
        """Prediction rate sits below a static ring's because every
        mutation forces the PF-gated links to be re-learned."""
        static = trace_workload(
            MutatingListWorkload(seed=3, traversals_per_mutation=10**9),
            max_instructions=40_000,
        )
        mutating = trace_workload(
            MutatingListWorkload(seed=3, traversals_per_mutation=4),
            max_instructions=40_000,
        )
        static_m = run_predictor(CAPPredictor(), static.predictor_stream())
        mutating_m = run_predictor(CAPPredictor(), mutating.predictor_stream())
        assert mutating_m.correct_rate < static_m.correct_rate
        # But accuracy holds: the confidence machinery absorbs the changes.
        assert mutating_m.accuracy > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            MutatingListWorkload(length=2)


class TestRingBuffer:
    def test_interval_suits_ring(self):
        """Wrapping cursors are exactly what strides+interval handle."""
        trace = trace_workload(RingBufferWorkload(seed=3), max_instructions=30_000)
        metrics = run_predictor(StridePredictor(), trace.predictor_stream())
        assert metrics.prediction_rate > 0.7
        assert metrics.accuracy > 0.98

    def test_validation(self):
        with pytest.raises(ValueError):
            RingBufferWorkload(slots=100)


class TestSparseMatVec:
    def test_mixed_predictability(self):
        """CSR metadata streams predict well; the gather mostly does not."""
        trace = trace_workload(
            SparseMatVecWorkload(seed=3), max_instructions=40_000,
        )
        metrics = run_predictor(HybridPredictor(), trace.predictor_stream())
        assert 0.3 < metrics.prediction_rate < 0.999
        assert metrics.accuracy > 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseMatVecWorkload(rows=0)
