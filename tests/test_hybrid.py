"""Tests for the hybrid CAP/stride predictor and its selector."""

import pytest

from repro.predictors import (
    UPDATE_ALWAYS,
    UPDATE_UNLESS_STRIDE_CORRECT,
    UPDATE_UNLESS_STRIDE_SELECTED,
    HybridConfig,
    HybridPredictor,
)
from repro.predictors.base import lb_key

RDS_BASES = [0x2000_0010, 0x2000_0380, 0x2000_0140, 0x2000_0220]


def drive(predictor, sequence):
    spec = correct = 0
    for ip, offset, addr in sequence:
        p = predictor.predict(ip, offset)
        if p.speculative:
            spec += 1
            if p.address == addr:
                correct += 1
        predictor.update(ip, offset, addr, p)
    return spec, correct


def rds_seq(ip, offset, reps):
    return [(ip, offset, b + offset) for _ in range(reps) for b in RDS_BASES]


def stride_seq(ip, reps, n=40):
    return [(ip, 0, 0x3000_0000 + 16 * i) for _ in range(reps) for i in range(n)]


class TestComponentCoverage:
    def test_covers_rds(self):
        p = HybridPredictor()
        spec, correct = drive(p, rds_seq(0x100, 8, 60))
        assert spec > 0.9 * 4 * 60 and correct == spec

    def test_covers_strides(self):
        p = HybridPredictor()
        spec, correct = drive(p, stride_seq(0x200, 10))
        assert spec > 0.8 * 400
        assert correct >= spec - 1

    def test_covers_interleaved_mix(self):
        p = HybridPredictor()
        mixed = []
        stride_items = stride_seq(0x200, 10)
        rds_items = rds_seq(0x100, 8, 100)
        for a, b in zip(stride_items, rds_items):
            mixed += [a, b]
        spec, correct = drive(p, mixed)
        assert spec / len(mixed) > 0.85
        assert correct / spec > 0.99


class TestSelector:
    def test_selector_learns_cap_for_rds(self):
        p = HybridPredictor()
        drive(p, rds_seq(0x100, 8, 80))
        entry = p.load_buffer.peek(lb_key(0x100))
        assert entry.selector.favors_high  # CAP side

    def test_selector_initial_bias_is_weak_cap(self):
        p = HybridPredictor()
        p.predict(0x100, 0)  # allocates
        entry = p.load_buffer.peek(lb_key(0x100))
        assert entry.selector.value == 2
        assert entry.selector.state_name("stride", "cap") == "weak cap"

    def test_static_selector_stride(self):
        p = HybridPredictor(HybridConfig(static_selector="stride"))
        drive(p, rds_seq(0x100, 8, 40))
        pred = p.predict(0x100, 8)
        assert pred.source in ("stride", "cap")
        # With both components confident the static choice must be stride.
        if pred.info:
            cap_p = pred.info["cap"]
            stride_p = pred.info["stride"]
            if cap_p.speculative and stride_p.speculative:
                assert pred.source == "stride"

    def test_selector_stats_recorded(self):
        p = HybridPredictor()
        drive(p, rds_seq(0x100, 8, 50))
        stats = p.selector_stats
        assert stats.states.total > 0
        assert stats.speculative > 0

    def test_correct_selection_rate_high_on_clean_mix(self):
        p = HybridPredictor()
        drive(p, stride_seq(0x200, 8) + rds_seq(0x100, 8, 50))
        sel = p.selector_stats.selection
        if sel.total:
            assert sel.rate > 0.95


class TestLTUpdatePolicies:
    @pytest.mark.parametrize("policy", [
        UPDATE_ALWAYS, UPDATE_UNLESS_STRIDE_CORRECT,
        UPDATE_UNLESS_STRIDE_SELECTED,
    ])
    def test_policies_run(self, policy):
        p = HybridPredictor(HybridConfig(lt_update_policy=policy))
        spec, correct = drive(p, rds_seq(0x100, 8, 40))
        assert correct == spec

    def test_unless_stride_correct_saves_lt_writes(self):
        always = HybridPredictor(HybridConfig(lt_update_policy=UPDATE_ALWAYS))
        drive(always, stride_seq(0x200, 6))
        selective = HybridPredictor(
            HybridConfig(lt_update_policy=UPDATE_UNLESS_STRIDE_CORRECT)
        )
        drive(selective, stride_seq(0x200, 6))
        assert (
            selective.cap.link_table.link_writes
            < always.cap.link_table.link_writes
        )

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            HybridConfig(lt_update_policy="sometimes")

    def test_bad_selector_rejected(self):
        with pytest.raises(ValueError):
            HybridConfig(static_selector="neither")


class TestSharedLoadBuffer:
    def test_one_entry_per_static_load(self):
        p = HybridPredictor()
        drive(p, rds_seq(0x100, 8, 5) + stride_seq(0x200, 2))
        assert p.load_buffer.occupancy() == 2

    def test_lb_geometry_from_hybrid_config(self):
        p = HybridPredictor(HybridConfig(lb_entries=64, lb_ways=4))
        assert p.load_buffer.entries == 64
        assert p.load_buffer.ways == 4

    def test_reset(self):
        p = HybridPredictor()
        drive(p, rds_seq(0x100, 8, 20))
        p.reset()
        assert p.load_buffer.occupancy() == 0
        assert p.selector_stats.states.total == 0


class TestSpeculativeMode:
    def test_gap_zero_equivalence(self):
        seq = rds_seq(0x100, 8, 40) + stride_seq(0x200, 5)
        plain = HybridPredictor()
        r1 = drive(plain, seq)
        spec = HybridPredictor()
        spec.speculative_mode = True
        r2 = drive(spec, seq)
        assert r1 == r2
