"""Cross-cutting property-based tests: predictors must be total functions
over arbitrary load streams, and core invariants must hold throughout."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import PredictorMetrics
from repro.eval.runner import run_predictor
from repro.pipeline import PipelinedPredictor
from repro.predictors import (
    CAPPredictor,
    GShareAddressPredictor,
    HybridPredictor,
    LastAddressPredictor,
    StridePredictor,
)

# A random predictor stream: loads from few IPs over a modest address pool
# (so patterns sometimes emerge), interleaved with branches.
stream_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just(1),
            st.sampled_from([0x100, 0x104, 0x108, 0x10C]),
            st.integers(0, 2**20).map(lambda x: x * 4),
            st.sampled_from([0, 4, 8, 0xFC]),
        ),
        st.tuples(
            st.just(0),
            st.sampled_from([0x200, 0x204]),
            st.integers(0, 1),
            st.just(0),
        ),
        st.tuples(st.just(2), st.sampled_from([0x300, 0x304]), st.just(0),
                  st.just(0)),
        st.tuples(st.just(3), st.just(0x400), st.just(0), st.just(0)),
    ),
    max_size=300,
)

PREDICTOR_FACTORIES = [
    LastAddressPredictor,
    StridePredictor,
    CAPPredictor,
    HybridPredictor,
    GShareAddressPredictor,
    lambda: PipelinedPredictor(HybridPredictor(), 4),
    lambda: PipelinedPredictor(StridePredictor(), 12),
]


@settings(max_examples=25, deadline=None)
@given(stream=stream_strategy)
def test_predictors_total_and_metrics_sane(stream):
    """No predictor may crash, and metric invariants must hold."""
    for factory in PREDICTOR_FACTORIES:
        metrics = run_predictor(factory(), stream)
        assert 0 <= metrics.correct_speculative <= metrics.speculative
        assert metrics.speculative <= metrics.loads
        assert metrics.predictions <= metrics.loads
        assert metrics.correct_predictions <= metrics.predictions


@settings(max_examples=25, deadline=None)
@given(stream=stream_strategy)
def test_determinism(stream):
    """Two identical runs produce identical metrics."""
    for factory in (CAPPredictor, HybridPredictor):
        m1 = run_predictor(factory(), stream)
        m2 = run_predictor(factory(), stream)
        assert (m1.speculative, m1.correct_speculative, m1.predictions) == (
            m2.speculative, m2.correct_speculative, m2.predictions,
        )


@settings(max_examples=20, deadline=None)
@given(stream=stream_strategy)
def test_pipelined_gap_zero_equals_immediate(stream):
    """A prediction gap of zero must be a strict no-op wrapper."""
    direct = run_predictor(HybridPredictor(), stream)
    wrapped = run_predictor(PipelinedPredictor(HybridPredictor(), 0), stream)
    assert direct.speculative == wrapped.speculative
    assert direct.correct_speculative == wrapped.correct_speculative


@settings(max_examples=15, deadline=None)
@given(
    bases=st.lists(
        st.integers(0, 2**16).map(lambda x: 0x2000_0000 + x * 16),
        min_size=2, max_size=8, unique=True,
    ),
    reps=st.integers(min_value=20, max_value=40),
)
def test_cap_safe_on_any_short_ring(bases, reps):
    """On *any* short recurring sequence CAP either learns it or refuses
    to speculate.  (It cannot promise to learn every ring: two contexts
    may collide on one direct-mapped LT slot with different tags, and the
    PF filter then parks the slot — the paper's own pathology.)  What it
    must never do is speculate wrongly at scale."""
    p = CAPPredictor()
    spec = correct = 0
    for rep in range(reps):
        for base in bases:
            pred = p.predict(0x100, 8)
            if rep >= reps // 2 and pred.speculative:
                spec += 1
                correct += pred.address == base + 8
            p.update(0x100, 8, base + 8, pred)
    if spec:
        assert correct / spec > 0.9


@settings(max_examples=15, deadline=None)
@given(
    start=st.integers(0, 2**20).map(lambda x: x * 4),
    stride=st.integers(-256, 256).map(lambda x: x * 4),
    n=st.integers(min_value=20, max_value=60),
)
def test_stride_learns_any_arithmetic_sequence(start, stride, n):
    p = StridePredictor()
    correct = total = 0
    for i in range(n):
        addr = (start + stride * i) & 0xFFFFFFFF
        pred = p.predict(0x100, 0)
        if i >= 8:
            total += 1
            correct += pred.address == addr
        p.update(0x100, 0, addr, pred)
    assert correct == total


@settings(max_examples=10, deadline=None)
@given(stream=stream_strategy)
def test_metrics_record_totals(stream):
    loads = sum(1 for item in stream if item[0] == 1)
    metrics = run_predictor(HybridPredictor(), stream)
    assert metrics.loads == loads
    assert isinstance(metrics, PredictorMetrics)
