"""Tests for the differential verification subsystem.

Covers the spec oracles, the three-way differential replay, the fuzzer
(generation, determinism, shrinking), the metamorphic invariants and the
``repro verify`` CLI wiring.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.eval.cli import main as cli_main
from repro.verify import (
    METAMORPHIC_CHECKS,
    PROFILES,
    VARIANTS,
    generate_events,
    run_fuzz,
    run_metamorphic_checks,
    shrink_events,
    verify_events,
)
from repro.verify.differential import VariantSpec, fuzz_variant_names
from repro.verify.mutants import MUTANTS
from repro.verify.oracle import OraclePrediction
from repro.verify.regressions import load_cases


class TestOraclePrediction:
    def test_made_property(self):
        assert not OraclePrediction().made
        assert OraclePrediction(address=0x100).made


class TestSpecOracles:
    def test_stride_oracle_learns_a_stride(self):
        oracle = VARIANTS["stride"].oracle()
        hits = 0
        for i in range(40):
            addr = 0x8000 + 64 * i
            prediction = oracle.predict(0x4000, 0)
            if prediction.speculative and prediction.address == addr:
                hits += 1
            oracle.update(0x4000, 0, addr, prediction)
        assert hits > 30

    def test_cap_oracle_learns_a_ring(self):
        oracle = VARIANTS["cap"].oracle()
        ring = [0x10000, 0x10040, 0x100C0, 0x10020]
        hits = 0
        for i in range(len(ring) * 20):
            addr = ring[i % len(ring)]
            prediction = oracle.predict(0x4000, 0)
            if prediction.address == addr:
                hits += 1
            oracle.update(0x4000, 0, addr, prediction)
        # After warmup the link table replays the recurring walk.
        assert hits > len(ring) * 10

    def test_hybrid_oracle_dumps_selector_state(self):
        oracle = VARIANTS["hybrid"].oracle()
        for i in range(16):
            prediction = oracle.predict(0x4000, 0)
            oracle.update(0x4000, 0, 0x9000 + 8 * i, prediction)
        dump = oracle.confidence_dump()
        assert dump, "trained load missing from the confidence dump"
        for value in dump.values():
            assert len(value) == 3  # (cap, stride, selector)


class TestVariantRegistry:
    def test_fuzzed_names_are_registered(self):
        names = fuzz_variant_names()
        assert names
        assert set(names) <= set(VARIANTS)

    def test_every_variant_builds_both_sides(self):
        for spec in VARIANTS.values():
            production = spec.production()
            oracle = spec.oracle()
            assert hasattr(production, "predict")
            assert hasattr(oracle, "predict")


class TestVerifyEvents:
    @pytest.mark.parametrize("variant,profile", [
        ("cap", "aliasing"),
        ("cap-short-history", "rds_walk"),
        ("stride", "branch_churn"),
        ("hybrid", "mixed"),
    ])
    def test_clean_on_generated_traces(self, variant, profile):
        events = generate_events(profile, seed=11, count=250)
        assert verify_events(variant, events) is None

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            verify_events("no-such-variant", [[1, 0x4000, 0, 0]])

    def test_detects_a_planted_bug(self, monkeypatch):
        """A broken oracle must produce a divergence with a usable report."""
        real = VARIANTS["cap"]
        broken = VariantSpec(
            name="cap-broken",
            description="cap with a deliberately broken oracle",
            production=real.production,
            oracle=MUTANTS["lt-context-after-advance"].build,
        )
        monkeypatch.setitem(VARIANTS, "cap-broken", broken)
        case = {c.name: c for c in load_cases()}["lt-context-after-advance"]
        divergence = verify_events("cap-broken", case.events)
        assert divergence is not None
        assert divergence.variant == "cap-broken"
        assert divergence.kind in (
            "access", "metrics", "link_table", "confidence",
        )
        report = divergence.format()
        assert "cap-broken" in report
        assert divergence.paths in report


class TestFuzzGeneration:
    def test_deterministic_in_seed(self):
        for profile in PROFILES:
            assert generate_events(profile, 5, 100) == \
                   generate_events(profile, 5, 100)

    def test_seeds_vary_the_trace(self):
        assert generate_events("aliasing", 1, 100) != \
               generate_events("aliasing", 2, 100)

    def test_events_are_well_formed(self):
        for profile in PROFILES:
            events = generate_events(profile, 9, 80)
            assert len(events) >= 80
            assert any(event[0] == 1 for event in events)
            for tag, ip, a, b in events:
                assert tag in (0, 1, 2, 3)
                assert 0 <= a < (1 << 32)
                assert ip >= 0 and b >= 0


class TestShrinking:
    def test_shrinks_to_the_failing_core(self):
        marker = [1, 0xDEAD, 0x100, 0]
        noise = [[1, 0x4000 + 4 * i, 8 * i, 0] for i in range(40)]
        events = noise[:20] + [marker] + noise[20:] + [marker, marker]

        def still_fails(candidate):
            return sum(1 for e in candidate if e[1] == 0xDEAD) >= 2

        minimal = shrink_events(events, still_fails)
        assert minimal == [marker, marker]

    def test_respects_check_budget(self):
        calls = []

        def still_fails(candidate):
            calls.append(1)
            return True

        shrink_events([[1, i, 0, 0] for i in range(64)], still_fails,
                      max_checks=10)
        assert len(calls) <= 10


class TestFuzzLoop:
    def test_clean_implementation_yields_no_failures(self):
        assert run_fuzz(cases=12, seed=3, events_per_case=120) == []

    def test_variant_filter(self):
        assert run_fuzz(cases=4, seed=1, events_per_case=80,
                        variants=["cap"]) == []

    def test_progress_callback(self):
        seen = []
        run_fuzz(cases=3, seed=0, events_per_case=60,
                 progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestMetamorphic:
    def test_all_checks_registered(self):
        assert set(METAMORPHIC_CHECKS) == {
            "ip_translation",
            "stride_address_translation",
            "cfi_relaxation",
            "pf_relaxation",
        }

    @pytest.mark.parametrize("profile", ["rds_walk", "mixed"])
    def test_invariants_hold_on_generated_traces(self, profile):
        events = generate_events(profile, seed=7, count=200)
        assert run_metamorphic_checks(events) == []


# A compact event-space for the property test: few IPs and addresses so
# the tables collide constantly, mixed with branch/call/return traffic.
_ips = st.sampled_from([0x4000 + 4 * i for i in range(6)]
                       + [0x4000 + 128 * i for i in range(3)])
_loads = st.builds(
    lambda ip, addr, offset: [1, ip, addr, offset],
    _ips,
    st.sampled_from([0x10000 + 16 * i for i in range(8)] + [0xFFFFFFF0]),
    st.sampled_from([0, 8, 255, 256]),
)
_branches = st.builds(lambda taken: [0, 0x5000, taken, 0],
                      st.integers(0, 1))
_calls = st.sampled_from([[2, 0x6000, 0, 0], [3, 0x6004, 0, 0]])
_traces = st.lists(st.one_of(_loads, _branches, _calls), max_size=60)


class TestProperties:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(events=_traces, variant=st.sampled_from(["cap", "stride", "hybrid"]))
    def test_three_paths_agree_on_arbitrary_traces(self, events, variant):
        assert verify_events(variant, events) is None


class TestVerifyCLI:
    def test_verify_subcommand_green_path(self, tmp_path, capsys):
        code = cli_main([
            "verify", "--fuzz", "2", "--events", "60", "--seed", "1",
            "--replay", str(tmp_path / "empty"),
            "--save-dir", str(tmp_path / "found"),
            "--no-metamorphic",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "regressions: 0 replayed" in out
        assert "fuzz: 2 cases, 0 divergence(s)" in out
        assert not list((tmp_path / "found").glob("*.json"))

    def test_verify_rejects_unknown_variant(self, capsys):
        code = cli_main(["verify", "--fuzz", "1", "--variants", "bogus"])
        assert code == 2
        assert "unknown variant" in capsys.readouterr().err

    def test_verify_replays_checked_in_regressions(self, capsys):
        code = cli_main(["verify", "--fuzz", "0", "--no-metamorphic"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed" in out
