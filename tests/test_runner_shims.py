"""Deprecation shims in :mod:`repro.eval.runner`.

PR 7 moved the evaluation loops to :mod:`repro.serve.session` and left
``run_on_stream``/``run_on_columns``/``run_predictor`` behind as
delegating shims.  These tests pin the shim contract:

* each shim calls the same-named function in ``repro.serve.session``
  (lazy import, so monkeypatching the serve module is observed) and
  returns its result unchanged;
* each shim emits ``DeprecationWarning`` exactly once per process, with
  a message that names both the old and the new home;
* the shims still produce correct metrics end-to-end, so historical
  imports keep working.
"""

from __future__ import annotations

import warnings

import pytest

from repro.eval.metrics import PredictorMetrics
from repro.eval import runner
from repro.predictors.stride import StridePredictor
from repro.serve import session
from repro.trace import KIND_LOAD, Trace

SHIM_NAMES = ["run_on_stream", "run_on_columns", "run_predictor"]


@pytest.fixture(autouse=True)
def _reset_warned():
    """Each test observes warn-once behaviour from a clean slate."""
    saved = set(runner._WARNED)
    runner._WARNED.clear()
    yield
    runner._WARNED.clear()
    runner._WARNED.update(saved)


def _shim_arg(name):
    trace = _trace()
    if name == "run_on_columns":
        return trace.predictor_columns()
    return trace.predictor_stream()


def _trace():
    trace = Trace()
    for i in range(64):
        trace.append(kind=KIND_LOAD, ip=0x400100, addr=0x1000 + 8 * i)
    return trace


# ---------------------------------------------------------------------------
# Delegation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", SHIM_NAMES)
def test_shim_delegates_to_serve_session(name, monkeypatch):
    calls = []
    sentinel = object()

    def fake(*args, **kwargs):
        calls.append((args, kwargs))
        return sentinel

    monkeypatch.setattr(session, name, fake)
    shim = getattr(runner, name)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        if name == "run_predictor":
            result = shim(StridePredictor(), _trace())
        else:
            result = shim(StridePredictor(), _shim_arg(name), PredictorMetrics())
    assert result is sentinel
    assert len(calls) == 1


def test_run_predictor_shim_matches_direct_call():
    trace = _trace()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        via_shim = runner.run_predictor(StridePredictor(), trace)
    direct = session.run_predictor(StridePredictor(), trace)
    assert (via_shim.loads, via_shim.predictions, via_shim.correct_speculative,
            via_shim.correct_predictions) == (
        direct.loads, direct.predictions, direct.correct_speculative,
        direct.correct_predictions)
    assert via_shim.loads > 0


# ---------------------------------------------------------------------------
# Warn-once behaviour
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", SHIM_NAMES)
def test_shim_warns_exactly_once(name):
    shim = getattr(runner, name)

    def invoke():
        if name == "run_predictor":
            return shim(StridePredictor(), _trace())
        return shim(StridePredictor(), _shim_arg(name), PredictorMetrics())

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        invoke()
        invoke()
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert f"repro.eval.runner.{name} is deprecated" in message
    assert f"repro.serve.session.{name}" in message


def test_each_shim_warns_independently():
    trace = _trace()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        runner.run_predictor(StridePredictor(), trace)
        runner.run_on_columns(StridePredictor(), trace.predictor_columns(),
                              PredictorMetrics())
        runner.run_on_stream(StridePredictor(), trace.predictor_stream(),
                             PredictorMetrics())
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 3
    assert runner._WARNED == set(SHIM_NAMES)
