#!/usr/bin/env python
"""Global correlation demo: one RDS, three fields, one set of links.

Reproduces the Section 3.3 mechanism on the paper's own example — the
xlisp NODE record with ``n_type``/``car``/``cdr`` fields.  Three static
loads walk the same cells; with *base-address* links they share Link
Table entries, so training any one field predicts the others, and a
single structural change retrains all of them at once.

Run:  python examples/global_correlation.py
"""

from repro.eval.runner import run_predictor
from repro.predictors import (
    CORRELATION_BASE,
    CORRELATION_REAL,
    CAPConfig,
    CAPPredictor,
)
from repro.workloads import ListEvalWorkload, trace_workload


def evaluate(correlation: str, stream) -> tuple:
    predictor = CAPPredictor(CAPConfig(correlation=correlation))
    metrics = run_predictor(predictor, stream)
    links = predictor.component.link_table.occupancy()
    return metrics, links


def main() -> None:
    # The xlisp-style workload: an evaluator walking cons cells through a
    # global current-element pointer, with numeric and sublist elements.
    trace = trace_workload(ListEvalWorkload(seed=7), max_instructions=80_000)
    print(trace.summary())
    stream = trace.predictor_stream()

    print()
    print(f"{'links mode':<16} {'LT links used':>14} {'pred rate':>10}"
          f" {'accuracy':>10}")
    for label, mode in (
        ("base addresses", CORRELATION_BASE),
        ("real addresses", CORRELATION_REAL),
    ):
        metrics, links = evaluate(mode, stream)
        print(
            f"{label:<16} {links:>14} {metrics.prediction_rate:>9.1%}"
            f" {metrics.accuracy:>9.1%}"
        )

    print()
    print(
        "Base-address links store one entry per *node* instead of one per\n"
        "(node, field) pair: the Link Table footprint shrinks while the\n"
        "fields cross-train each other — the paper's global correlation\n"
        "property (Section 3.3).  On big workload mixes this is worth about\n"
        "+10% of all dynamic loads (Figure 9; see"
        " benchmarks/test_fig9_history_length.py)."
    )

    # ------------------------------------------------------------------
    # The cross-training effect, isolated: train CAP on the `cdr` field
    # only, then measure how a *never-seen* `car` load performs on its
    # very first traversals of the same cells.
    # ------------------------------------------------------------------
    cells = [0x2000_0000 + 0x40 * k for k in (3, 11, 6, 14, 9, 1)]

    def walk(predictor, ip, offset, reps):
        hits = total = 0
        for _ in range(reps):
            for cell in cells:
                pred = predictor.predict(ip, offset)
                total += 1
                hits += pred.address == cell + offset
                predictor.update(ip, offset, cell + offset, pred)
        return hits / total

    print()
    print("Cold-start accuracy of an unseen field after training another:")
    for label, mode in (
        ("base addresses", CORRELATION_BASE),
        ("real addresses", CORRELATION_REAL),
    ):
        predictor = CAPPredictor(CAPConfig(correlation=mode))
        walk(predictor, ip=0x100, offset=8, reps=40)   # train `cdr`
        cold = walk(predictor, ip=0x200, offset=4, reps=3)  # fresh `car`
        print(f"  {label:<16} first-traversals correct: {cold:.1%}")


if __name__ == "__main__":
    main()
