#!/usr/bin/env python
"""Suite tour: run the hybrid predictor over one trace from every suite.

Shows how the 45-trace roster's suites differ in character — MM is
stride-dominated, INT is pointer-chasing, NT/W95 are constant-load-heavy
message pumps with big static-load populations, TPC mixes probes and
scans — and how the hybrid's components split the work.

Run:  python examples/suite_tour.py           (first run generates traces)
"""

from repro.eval.runner import run_predictor
from repro.predictors import CAPPredictor, HybridPredictor, StridePredictor
from repro.workloads import suites


def main() -> None:
    print(
        f"{'trace':<12} {'suite':<6} {'loads':>8} {'static':>7}"
        f" {'stride':>8} {'cap':>8} {'hybrid':>8} {'acc':>8}"
    )
    for suite in suites.SUITE_NAMES:
        name = suites.trace_names(suite)[0]
        trace = suites.get_trace(name, instructions=100_000)
        summary = trace.summary()
        stream = trace.predictor_stream()

        stride = run_predictor(StridePredictor(), stream)
        cap = run_predictor(CAPPredictor(), stream)
        hybrid = run_predictor(HybridPredictor(), stream)

        print(
            f"{name:<12} {suite:<6} {summary.loads:>8}"
            f" {summary.static_loads:>7}"
            f" {stride.prediction_rate:>7.1%} {cap.prediction_rate:>7.1%}"
            f" {hybrid.prediction_rate:>7.1%} {hybrid.accuracy:>7.1%}"
        )

    print()
    print(
        "Reading the rows like the paper's Figure 5: the hybrid tracks\n"
        "whichever component suits the suite — stride on MM's arrays, CAP\n"
        "on INT's recursive data structures — and adds a little on top\n"
        "where the components complement each other."
    )


if __name__ == "__main__":
    main()
