#!/usr/bin/env python
"""Section 2 reproduction: analyse the loads current predictors miss.

The paper's analysis section prints letter-coded "fingerprints" of load
address streams to argue that the hard loads are *short recurring
sequences* (RDS traversals, call-site-dependent accesses), not noise.
This example redoes that analysis on the xlisp-style workload and on the
go-style index-list workload, then shows the front-end pressure numbers
behind the Section 5.4 implementation discussion.

Run:  python examples/load_analysis.py
"""

from repro.analysis import analyze_fetch_groups, analyze_trace, load_fingerprint
from repro.workloads import IndexListWorkload, ListEvalWorkload, trace_workload


def main() -> None:
    for title, workload in (
        ("xlisp-style evaluator", ListEvalWorkload(seed=21)),
        ("go-style index lists", IndexListWorkload(seed=21)),
    ):
        trace = trace_workload(workload, max_instructions=40_000)
        analysis = analyze_trace(trace)
        print(f"=== {title} ===")
        print(analysis.render(top=5))
        print()
        print("fingerprints (paper Section 2 style):")
        ranked = sorted(analysis.profiles, key=lambda p: -p.count)[:3]
        for profile in ranked:
            print(
                f"  {profile.ip:#x} [{profile.classification}]  "
                + load_fingerprint(trace, profile.ip, limit=20)
            )
        print()

    # Section 5.4: how many predictions per cycle would the front end need?
    trace = trace_workload(ListEvalWorkload(seed=21), max_instructions=40_000)
    print(analyze_fetch_groups(trace, width=8).render())
    print()
    print(
        "Short recurring sequences dominate — the repetition property that\n"
        "justifies a context-based predictor (Section 3.1) — and an 8-wide\n"
        "front end routinely needs several predictions per cycle, sometimes\n"
        "for the same static load (the Section 5.4 implementation concern)."
    )


if __name__ == "__main__":
    main()
