#!/usr/bin/env python
"""Pipeline effects: what a realistic prediction gap costs (Section 5).

Sweeps the prediction gap (pipeline stages between predicting a load
address and verifying it) for the hybrid predictor over an RDS-heavy and
an array-heavy workload, then shows the end-to-end speedup from the
out-of-order timing model at a gap of 8.

Run:  python examples/pipeline_effects.py
"""

from repro.eval.runner import run_predictor
from repro.pipeline import PipelinedPredictor
from repro.predictors import HybridPredictor
from repro.timing import simulate, speedup
from repro.workloads import ArraySumWorkload, ListEvalWorkload, trace_workload

GAPS = [0, 4, 8, 12]


def main() -> None:
    traces = {
        "xlisp-like (RDS)": trace_workload(
            ListEvalWorkload(seed=5), max_instructions=60_000
        ),
        "array sum (stride)": trace_workload(
            ArraySumWorkload(seed=5, elements=2048), max_instructions=60_000
        ),
    }

    header = f"{'workload':<20}" + "".join(
        f"{('imm' if g == 0 else f'gap {g}'):>16}" for g in GAPS
    )
    print("Hybrid prediction rate / accuracy vs prediction gap")
    print(header)
    for label, trace in traces.items():
        stream = trace.predictor_stream()
        cells = []
        for gap in GAPS:
            predictor = PipelinedPredictor(HybridPredictor(), gap)
            m = run_predictor(predictor, stream)
            cells.append(f"{m.prediction_rate:>6.1%}/{m.accuracy:<7.1%}")
        print(f"{label:<20}" + "".join(f"{c:>16}" for c in cells))

    print()
    print("End-to-end speedup (out-of-order timing model)")
    print(f"{'workload':<20}{'immediate':>12}{'gap 8':>12}")
    for label, trace in traces.items():
        base = simulate(trace)
        imm = simulate(trace, HybridPredictor())
        piped = simulate(trace, PipelinedPredictor(HybridPredictor(), 8))
        print(
            f"{label:<20}{speedup(base, imm):>11.3f}x"
            f"{speedup(base, piped):>11.3f}x"
        )

    print()
    print(
        "Pointer chases keep most of their benefit because the speculative\n"
        "history lets in-flight predictions walk the Link Table forward,\n"
        "and branch-mispredict drains resynchronise the chains (Section\n"
        "5.2); stride code relies on the catch-up extrapolation instead."
    )


if __name__ == "__main__":
    main()
