#!/usr/bin/env python
"""Quickstart: predict the loads of a pointer-chasing program.

This walks the full pipeline in ~60 lines:

1. write a tiny program against the mini-ISA (a linked-list traversal —
   the paper's Section 2.1 motivating example);
2. run it on the functional CPU to get a dynamic trace;
3. evaluate the stride, CAP and hybrid predictors on that trace;
4. print the paper-style prediction-rate / accuracy numbers.

Run:  python examples/quickstart.py
"""

from repro.eval.runner import run_predictor
from repro.isa import CPU, HeapAllocator, Memory, assemble
from repro.predictors import CAPPredictor, HybridPredictor, StridePredictor
from repro.trace import Trace


def build_linked_list(memory: Memory, length: int = 12) -> int:
    """Allocate a shuffled linked list (val @ +4, next @ +8); returns head."""
    allocator = HeapAllocator(policy="shuffled", seed=42)
    nodes = [allocator.alloc(16) for _ in range(length)]
    for i, addr in enumerate(nodes):
        memory.poke(addr + 4, i * 10)                       # val
        memory.poke(addr + 8, nodes[i + 1] if i + 1 < length else 0)
    return nodes[0]


def main() -> None:
    memory = Memory()
    head = build_linked_list(memory)

    # `p = p->next`-style traversal, repeated forever; the trace length is
    # bounded by max_instructions below.
    program = assemble(
        f"""
        main:
            li   r2, 0              ; checksum
        outer:
            li   r1, {head}         ; p = head
        walk:
            ld   r3, 4(r1)          ; val  = p->val   (stride-hopeless)
            add  r2, r2, r3
            ld   r1, 8(r1)          ; p    = p->next  (pointer chase)
            bne  r1, r0, walk
            jmp  outer
        """,
        name="quickstart",
    )

    trace = Trace("quickstart")
    CPU(memory).run(program, max_instructions=50_000, trace=trace)
    print(trace.summary())
    print()

    stream = trace.predictor_stream()
    print(f"{'predictor':<16} {'pred rate':>10} {'accuracy':>10}")
    for predictor in (StridePredictor(), CAPPredictor(), HybridPredictor()):
        metrics = run_predictor(predictor, stream)
        print(
            f"{predictor.name:<16} {metrics.prediction_rate:>9.1%}"
            f" {metrics.accuracy:>9.1%}"
        )
    print()
    print(
        "The shuffled node layout defeats the stride predictor, while the"
        " context-based\nCAP predictor learns the short recurring address"
        " sequence almost perfectly —\nthe paper's core observation"
        " (Sections 2.1 and 3.1)."
    )


if __name__ == "__main__":
    main()
