"""Section 1 claims — last-address and stride baseline coverage.

Paper result: "Last-address predictors surprisingly handle an average of
40% of all load addresses, whereas stride-based predictors add an
additional 13%", leaving ~half of all loads to more complex patterns.
"""

from conftest import run_once

from repro.eval import experiments as E


def test_baselines(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.baselines(trace_set, instr))
    report(result.render())

    last = result.average("last")
    basic = result.average("basic stride")
    enhanced = result.average("enh stride")

    # Last-address covers a substantial fraction by itself (paper: ~40%).
    assert 0.15 < last.prediction_rate < 0.60

    # Stride strictly extends last-address coverage (paper: +13%).
    assert basic.prediction_rate > last.prediction_rate + 0.05

    # Roughly half of the loads remain uncovered — the paper's motivation.
    assert basic.prediction_rate < 0.75

    # The enhanced stride trades a sliver of rate for near-perfect accuracy.
    assert enhanced.accuracy >= basic.accuracy
    assert enhanced.accuracy > 0.99
