"""Guard: disabled instrumentation must not slow the columnar loop.

The telemetry probes are wired as ``if self.probe is not None:`` checks on
the predictor hot paths.  This benchmark freezes a copy of the stride
predictor exactly as it was *before* those checks existed (``_Seed*``
classes below) and times both against :func:`run_on_columns`, asserting the
probe-check overhead of the disabled path stays under 2%.

A drift guard runs first: the seed copy and the live predictor must produce
identical metrics on the same stream.  If a behavioural change to the
stride predictor lands, that assertion fails loudly — refresh the frozen
copy to match before trusting the timing comparison again.

The observability plane (``repro.obs``) gets the same treatment: its
hooks sit at per-chunk/per-feed granularity (never per event), and a
disabled registry/tracer hands out shared null instruments.  The second
benchmark drives a chunked evaluation loop with the exact hook set the
serving batch worker uses per feed and holds it to the same <2% budget.
"""

import time
from typing import Optional

from repro.common.bitops import mask
from repro.common.tables import SetAssociativeTable
from repro.eval.metrics import PredictorMetrics
from repro.eval.runner import run_on_columns
from repro.predictors.base import AddressPredictor, Prediction, lb_key
from repro.predictors.stride import StrideConfig, StridePredictor, StrideState
from repro.workloads import LinkedListWorkload, trace_workload

_MASK32 = mask(32)

ROUNDS = 7
MAX_OVERHEAD = 0.02


class _SeedStrideLogic:
    """``StrideLogic`` as of the pre-instrumentation seed (no probe)."""

    def __init__(self, config: StrideConfig) -> None:
        self.config = config

    def predict(
        self,
        state: StrideState,
        ghr: int,
        speculative_mode: bool = False,
    ) -> Prediction:
        base = state.spec_last_addr if speculative_mode else state.last_addr
        if speculative_mode:
            state.pending += 1
        if base is None:
            return Prediction(source="stride")
        address = (base + state.stride) & _MASK32
        speculative = state.confidence.confident and state.cfi.allows(ghr)
        if speculative_mode and state.suppress > 0:
            speculative = False
        if (
            speculative
            and self.config.use_interval
            and state.interval
            and state.run_length >= state.interval
        ):
            speculative = False
        if speculative_mode:
            state.spec_last_addr = address
        return Prediction(
            address=address, speculative=speculative, source="stride"
        )

    def train(
        self,
        state: StrideState,
        actual: int,
        ghr_at_predict: int,
        speculated: bool,
        predicted_addr: Optional[int] = None,
        had_prediction: bool = False,
        speculative_mode: bool = False,
    ) -> None:
        if not had_prediction and predicted_addr is None:
            if state.last_addr is not None:
                predicted_addr = (state.last_addr + state.stride) & _MASK32
        correct = (
            predicted_addr == actual if predicted_addr is not None else None
        )
        if correct is not None:
            state.confidence.update(correct)
            state.cfi.record(ghr_at_predict, correct, speculated)
            if self.config.use_interval:
                if correct:
                    state.run_length += 1
                else:
                    if state.run_length:
                        state.interval = state.run_length
                    state.run_length = 0
        if state.last_addr is not None:
            delta = (actual - state.last_addr) & _MASK32
            if self.config.two_delta:
                if state.last_delta is not None and delta == state.last_delta:
                    state.stride = delta
                state.last_delta = delta
            else:
                state.stride = delta
        state.last_addr = actual

        if speculative_mode:
            state.pending = max(0, state.pending - 1)
            if state.suppress > 0:
                state.suppress -= 1
            if not correct:
                state.spec_last_addr = (
                    actual + state.stride * state.pending
                ) & _MASK32
                state.suppress = state.pending
        else:
            state.spec_last_addr = actual
            state.pending = 0
            state.suppress = 0


class _SeedStridePredictor(AddressPredictor):
    """``StridePredictor`` as of the pre-instrumentation seed."""

    def __init__(self, config: Optional[StrideConfig] = None) -> None:
        super().__init__()
        self.config = config or StrideConfig()
        self.logic = _SeedStrideLogic(self.config)
        self.table: SetAssociativeTable[StrideState] = SetAssociativeTable(
            self.config.entries, self.config.ways
        )
        self.speculative_mode = False

    def predict(self, ip: int, offset: int) -> Prediction:
        state = self.table.lookup(lb_key(ip))
        if state is None:
            state = StrideState(self.config)
            if self.speculative_mode:
                state.pending = 1
            self.table.insert(lb_key(ip), state)
            return Prediction(source="stride")
        prediction = self.logic.predict(
            state, self.ghr, speculative_mode=self.speculative_mode
        )
        prediction.ghr = self.ghr
        return prediction

    def update(
        self, ip: int, offset: int, actual: int, prediction: Prediction
    ) -> None:
        state = self.table.lookup(lb_key(ip))
        if state is None:
            state = StrideState(self.config)
            self.table.insert(lb_key(ip), state)
        self.logic.train(
            state,
            actual,
            ghr_at_predict=prediction.ghr,
            speculated=prediction.speculative,
            predicted_addr=prediction.address,
            had_prediction=True,
            speculative_mode=self.speculative_mode,
        )

    def reset(self) -> None:
        super().reset()
        self.table.clear()


def _stream():
    trace = trace_workload(
        LinkedListWorkload(seed=9), max_instructions=120_000
    )
    return trace.predictor_columns()


def _metric_tuple(m):
    return (m.loads, m.predictions, m.speculative, m.correct_speculative,
            m.correct_predictions)


def _time_run(factory, stream) -> float:
    predictor = factory()
    started = time.perf_counter()
    run_on_columns(predictor, stream, PredictorMetrics())
    return time.perf_counter() - started


def test_seed_copy_has_not_drifted():
    """Behavioural lockstep between the frozen copy and the live code."""
    stream = _stream()
    live = run_on_columns(StridePredictor(), stream, PredictorMetrics())
    seed = run_on_columns(_SeedStridePredictor(), stream, PredictorMetrics())
    assert _metric_tuple(live) == _metric_tuple(seed), (
        "live stride predictor diverged from the frozen seed copy —"
        " update _SeedStrideLogic/_SeedStridePredictor to match before"
        " trusting the overhead numbers"
    )


def test_disabled_instrumentation_overhead(record_property):
    """Probe ``is not None`` checks must cost <2% with no probe attached."""
    stream = _stream()
    # Warm both paths (bytecode caches, branch history, allocator).
    _time_run(StridePredictor, stream)
    _time_run(_SeedStridePredictor, stream)
    live_times = []
    seed_times = []
    for _ in range(ROUNDS):  # interleaved so drift hits both equally
        live_times.append(_time_run(StridePredictor, stream))
        seed_times.append(_time_run(_SeedStridePredictor, stream))
    live, seed = min(live_times), min(seed_times)
    overhead = live / seed - 1.0
    record_property("disabled_overhead", f"{overhead:+.3%}")
    print(f"\ndisabled-instrumentation overhead: {overhead:+.2%}"
          f" (live {live * 1000:.1f}ms vs seed {seed * 1000:.1f}ms,"
          f" best of {ROUNDS})")
    assert overhead < MAX_OVERHEAD, (
        f"disabled instrumentation costs {overhead:.2%} on the columnar"
        f" loop (budget {MAX_OVERHEAD:.0%})"
    )


# ---------------------------------------------------------------------------
# Observability plane: disabled metrics/tracing hooks on the feed path
# ---------------------------------------------------------------------------

CHUNK_EVENTS = 2048


def _chunks(stream):
    """The stream's event tuples in serving-sized feed chunks."""
    tuples = stream.tuples()
    return [
        tuples[i : i + CHUNK_EVENTS]
        for i in range(0, len(tuples), CHUNK_EVENTS)
    ]


def _time_chunked_run(chunks, hooks=None) -> float:
    """One session-style run: a fresh predictor fed chunk by chunk.

    ``hooks`` mirrors the serving batch worker's per-feed hook set:
    queue-depth gauge, occupancy histogram, wait histogram, one span.
    """
    from repro.serve.session import PredictorSession, SessionConfig

    session = PredictorSession(SessionConfig(factory="stride"))
    started = time.perf_counter()
    if hooks is None:
        for chunk in chunks:
            session.feed(chunk)
    else:
        depth, occupancy, wait, counter, tracer = hooks
        for chunk in chunks:
            depth.set(1.0)
            occupancy.observe(1.0)
            wait.observe(0.0)
            counter.inc()
            with tracer.span("serve.batch.exec", batch=1):
                session.feed(chunk)
    return time.perf_counter() - started


def test_disabled_obs_hooks_overhead(record_property):
    """The serving feed path's obs hooks must cost <2% when disabled.

    The hook set costs microseconds per feed while a feed itself takes
    milliseconds, so a paired end-to-end comparison buries the signal
    under run-to-run noise many times its size.  Instead: time the bare
    chunked run for the denominator, then time the disabled hook set
    itself in a tight loop and bound its per-feed cost's share of the
    bare feed time.  That measures exactly the ops the hooked path adds,
    with no noise floor to flake on.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Tracer

    registry = MetricsRegistry(enabled=False)
    tracer = Tracer(enabled=False)
    depth = registry.gauge("serve.queue.depth")
    occupancy = registry.histogram("serve.batch.occupancy")
    wait = registry.histogram("serve.queue.wait_s")
    counter = registry.counter("serve.feeds")
    hooks = (depth, occupancy, wait, counter, tracer)

    chunks = _chunks(_stream())
    # One hooked run end to end: the wiring executes, and the disabled
    # instruments must leave both stores untouched afterwards.
    _time_chunked_run(chunks, hooks)
    _time_chunked_run(chunks)  # warm the bare path
    bare = min(_time_chunked_run(chunks) for _ in range(3))

    iterations = 20_000
    for _ in range(iterations):  # warm the hook loop
        depth.set(1.0)
    started = time.perf_counter()
    for _ in range(iterations):
        depth.set(1.0)
        occupancy.observe(1.0)
        wait.observe(0.0)
        counter.inc()
        with tracer.span("serve.batch.exec", batch=1):
            pass
    per_feed = (time.perf_counter() - started) / iterations
    overhead = per_feed * len(chunks) / bare
    record_property("disabled_obs_overhead", f"{overhead:+.3%}")
    print(f"\ndisabled-obs-hook overhead: {overhead:+.2%}"
          f" ({per_feed * 1e6:.1f}us/feed x {len(chunks)} chunks vs"
          f" bare {bare * 1000:.1f}ms)")
    # Nothing registered, nothing buffered: truly inert when disabled.
    assert len(registry) == 0
    assert len(tracer) == 0
    assert overhead < MAX_OVERHEAD, (
        f"disabled obs hooks cost {overhead:.2%} on the chunked feed"
        f" path (budget {MAX_OVERHEAD:.0%})"
    )
