"""Figure 8 — hybrid selector performance.

Paper result: ~80% of speculative accesses are loads predicted by both
components; ~90% of dual predictions sit in the two CAP-selecting counter
states (update-always biases the selector towards CAP); the correct-
selection rate is >99% — the 2-bit counter is "quite close to perfect".
"""

from conftest import run_once

from repro.eval import experiments as E


def test_fig8(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.fig8(trace_set, instr))
    report(result.render())

    avg = result.distributions["Average"]
    cap_states = avg.get("weak cap", 0.0) + avg.get("strong cap", 0.0)

    # Most dual predictions are made while the selector points at CAP.
    assert cap_states > 0.5

    # Selection is near-perfect (paper: >99%).
    assert result.correct_selection["Average"] > 0.97

    # A large share of speculative accesses is dual-predicted (paper ~80%).
    assert result.dual_share["Average"] > 0.4
