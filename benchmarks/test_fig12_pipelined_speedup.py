"""Figure 12 — processor speedup at a prediction gap of 8 vs immediate.

Paper result: the hybrid's average speedup drops from 21% (immediate) to
14.1% at a gap of 8 — still 3.9% ahead of the enhanced stride predictor;
address prediction remains clearly worthwhile in a deep pipeline.
"""

from conftest import run_once

from repro.eval import experiments as E

GAP = 8


def test_fig12(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.fig12(trace_set, instr, gap=GAP))
    report(result.render())

    averages = {
        variant: result.suite_average(variant)["Average"]
        for variant in result.variants
    }

    # Pipelining erodes but does not erase the gains.
    assert averages[f"hybrid g{GAP}"] > 1.0
    assert averages[f"hybrid g{GAP}"] <= averages["hybrid imm"] + 0.02

    # The hybrid still beats stride at the same gap.
    assert averages[f"hybrid g{GAP}"] >= averages[f"stride g{GAP}"] - 0.005
