"""Figure 7 — processor speedup of address prediction (immediate update).

Paper result: most traces gain 10-25% (average 21% for the hybrid); the
hybrid beats the enhanced stride predictor by ~6% on average; TPC and W95
gain least (LB contention); non-stride loads contribute disproportionately
to performance.
"""

from conftest import run_once

from repro.eval import experiments as E


def test_fig7(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.fig7(trace_set, instr))
    report(result.render())

    stride_avg = result.suite_average("stride")["Average"]
    hybrid_avg = result.suite_average("hybrid")["Average"]

    # Both predictors speed the machine up on average.
    assert stride_avg > 1.0
    assert hybrid_avg > 1.0

    # The hybrid beats stride (paper: +6.3% on average).
    assert hybrid_avg > stride_avg

    # The average lands in a plausible band around the paper's 1.21.
    assert 1.02 < hybrid_avg < 1.8

    # No trace is badly hurt by prediction.
    for trace, per_variant in result.per_trace.items():
        assert per_variant["hybrid"] > 0.97, trace
