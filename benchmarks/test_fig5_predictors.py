"""Figure 5 — prediction rate and accuracy of enhanced-stride, CAP and
hybrid predictors across the benchmark suites.

Paper result (45 IA-32 traces, immediate update): enhanced stride ~53%,
stand-alone CAP ~61%, hybrid ~67% prediction rate at ~98.9% accuracy;
CAP beats stride on every suite except MM; the hybrid always wins.
"""

from conftest import run_once

from repro.eval import experiments as E


def test_fig5(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.fig5(trace_set, instr))
    report(result.render())

    stride = result.average("stride")
    cap = result.average("cap")
    hybrid = result.average("hybrid")

    # Ordering: hybrid > stride and hybrid > cap (Figure 5's headline).
    assert hybrid.prediction_rate > stride.prediction_rate
    assert hybrid.prediction_rate >= cap.prediction_rate

    # The hybrid's gain over stride is in the +10-20 point band (paper: +14).
    gain = hybrid.prediction_rate - stride.prediction_rate
    assert 0.05 < gain < 0.30

    # Accuracy stays near the paper's ~99% for all three.
    for metrics in (stride, cap, hybrid):
        assert metrics.accuracy > 0.97

    # MM is the stride suite: CAP must NOT beat stride there (Section 4.2),
    # while CAP wins on the RDS-heavy INT suite.
    if "MM" in result.suites["cap"] and "INT" in result.suites["cap"]:
        mm_cap = result.suites["cap"]["MM"].combined.prediction_rate
        mm_stride = result.suites["stride"]["MM"].combined.prediction_rate
        assert mm_cap < mm_stride
        int_cap = result.suites["cap"]["INT"].combined.prediction_rate
        int_stride = result.suites["stride"]["INT"].combined.prediction_rate
        assert int_cap > int_stride
