"""Section 1 — load-value prediction vs load-address prediction.

Paper claim: "Load-value prediction may be used as an alternate option to
reduce load-to-use latency.  However, its lower predictability makes this
option less attractive."
"""

from conftest import run_once

from repro.eval import experiments as E


def test_value_vs_address(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.value_vs_address(trace_set, instr))
    report(result.render())

    last_rate, _, last_ceiling = result.rows["last-value"]
    stride_rate, _, stride_ceiling = result.rows["stride-value"]
    addr_rate, addr_acc, addr_ceiling = result.rows["hybrid (address)"]

    # Addresses are decisively more predictable than values.
    assert addr_rate > last_rate + 0.10
    assert addr_rate > stride_rate + 0.10
    assert addr_ceiling > max(last_ceiling, stride_ceiling)

    # The address predictor also keeps paper-grade accuracy.
    assert addr_acc > 0.97
