"""Figure 6 — hybrid prediction rate vs Load Buffer size/associativity.

Paper result: CAD/JAV/NT/TPC/W95 (many static loads) gain steadily with LB
size; a 2-way LB is a clear win over direct-mapped; >2-way adds little;
accuracy is insensitive to the geometry.
"""

from conftest import run_once

from repro.eval import experiments as E

GEOMETRIES = [(2048, 2), (4096, 1), (4096, 2), (4096, 4), (8192, 2)]


def test_fig6(benchmark, trace_set, instr, report):
    result = run_once(
        benchmark, lambda: E.fig6(trace_set, instr, geometries=GEOMETRIES)
    )
    report(result.render())

    small = result.average("2K,2way")
    direct = result.average("4K,1way")
    base = result.average("4K,2way")
    wide = result.average("4K,4way")
    big = result.average("8K,2way")

    # Bigger LBs never hurt, and the 8K LB beats the 2K LB.
    assert big.prediction_rate >= small.prediction_rate

    # 2-way beats direct-mapped at equal capacity (the paper's "definite win").
    assert base.prediction_rate >= direct.prediction_rate

    # 4-way adds little over 2-way (less cost-effective).
    assert abs(wide.prediction_rate - base.prediction_rate) < 0.05

    # Accuracy is flat across geometries.
    accs = [m.accuracy for m in (small, direct, base, wide, big)]
    assert max(accs) - min(accs) < 0.02
