"""Section 4.3 — Link Table update policies.

Paper result: "Surprisingly enough, the update-always option results in
slightly better prediction results on almost all traces" — selective
update trades CAP coverage against LT conflicts, and at 4K entries the
coverage wins.
"""

from conftest import run_once

from repro.eval import experiments as E


def test_lt_update_policy(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.lt_update_policy(trace_set, instr))
    report(result.render())

    always = result.average("always")
    unless_correct = result.average("unless stride ok")
    unless_selected = result.average("unless selected")

    # Update-always is at least as good as the selective policies
    # (the paper's "surprising" result), within noise.
    assert always.prediction_rate >= unless_correct.prediction_rate - 0.01
    assert always.prediction_rate >= unless_selected.prediction_rate - 0.01

    # All three stay accurate.
    for metrics in (always, unless_correct, unless_selected):
        assert metrics.accuracy > 0.97
