"""Figure 9 — correct predictions vs history length, with and without
global correlation.

Paper result (stand-alone CAP, no confidence mechanisms): global
correlation is worth about +10% of all dynamic loads; the optimal history
length is 2 without correlation and 3-4 with it (sharing one LT across
fields demands longer contexts).
"""

from conftest import run_once

from repro.eval import experiments as E

LENGTHS = [1, 2, 3, 4, 6, 12]


def test_fig9(benchmark, trace_set, instr, report):
    result = run_once(
        benchmark, lambda: E.fig9(trace_set, instr, lengths=LENGTHS)
    )
    report(result.render())

    with_corr = result.series["global correlation"]
    without = result.series["no global correlation"]

    # Global correlation wins at the default history length 4 and at the
    # respective optima (the paper's ~10% gap).
    idx4 = LENGTHS.index(4)
    assert with_corr[idx4] > without[idx4]
    assert max(with_corr) > max(without)
    gain = with_corr[idx4] - without[idx4]
    assert gain > 0.02

    # Very long histories do not help the uncorrelated predictor — its
    # curve must not peak at length 12 (paper: optimum 2).
    assert result.best_length("no global correlation") <= 4

    # Both curves live in a sane band.
    for series in (with_corr, without):
        assert all(0.0 <= v <= 1.0 for v in series)
