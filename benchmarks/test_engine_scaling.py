"""Engine scaling: the same job grid at 1, 2 and N worker processes.

Not a figure reproduction — a harness-health benchmark.  It times a
fig5-style (trace x predictor) grid through the parallel experiment engine
at several worker counts and reports the speedup over serial, so future
PRs can spot scaling regressions (pool overhead creeping up, lock
contention on the trace cache, results merging going quadratic, ...).

On a single-core runner the multi-process rows are expected to be mildly
*slower* than serial (pure pool overhead); the numbers still matter
because the overhead itself is what must not regress.
"""

import os

import pytest

from conftest import run_once

from repro.eval.engine import Job, run_jobs

GRID_TRACES = ["INT_xli", "MM_aud", "GAM_duk", "NT_cdw"]
GRID_VARIANTS = ["stride", "cap", "hybrid"]


def _grid(instr):
    return [
        Job(trace=name, factory=variant, instructions=instr, variant=variant)
        for name in GRID_TRACES
        for variant in GRID_VARIANTS
    ]


def _workers_n():
    return max(2, os.cpu_count() or 1)


@pytest.fixture(scope="module")
def scaling_instr():
    return int(os.environ.get("REPRO_BENCH_INSTR", "200000")) // 4


@pytest.fixture(scope="module", autouse=True)
def _warm(scaling_instr):
    # Generate the grid's traces once so every timed run sees a warm cache.
    run_jobs(_grid(scaling_instr), max_workers=1)


@pytest.mark.parametrize("workers", [1, 2, _workers_n()],
                         ids=lambda w: f"jobs{w}")
def test_engine_grid_scaling(benchmark, scaling_instr, workers, report):
    results = run_once(
        benchmark, lambda: run_jobs(_grid(scaling_instr), max_workers=workers)
    )
    assert len(results) == len(GRID_TRACES) * len(GRID_VARIANTS)
    assert all(r.metrics.loads > 0 for r in results)
    report(
        f"engine scaling: {len(results)} jobs @ {workers} worker(s): "
        f"{benchmark.stats.stats.mean:.2f}s"
    )


def test_engine_results_independent_of_workers(scaling_instr):
    """The scaling grid returns identical metrics at every worker count."""
    def fingerprint(results):
        return [
            (r.variant, r.trace, r.metrics.loads, r.metrics.speculative,
             r.metrics.correct_speculative)
            for r in results
        ]

    serial = fingerprint(run_jobs(_grid(scaling_instr), max_workers=1))
    for workers in (2, _workers_n()):
        assert fingerprint(
            run_jobs(_grid(scaling_instr), max_workers=workers)
        ) == serial
