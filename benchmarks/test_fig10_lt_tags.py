"""Figure 10 — LT tags and control-flow indications vs CAP performance.

Paper result: the untagged CAP predicts 64.2% with a 3.3% misprediction
rate; 4 bits of tag cut mispredictions by ~57% while losing only ~2% of
predictions; 8 bits cut another ~26%; adding path (CFI) information
reaches ~0.7% — tags are "an extremely efficient confidence scheme".
"""

from conftest import run_once

from repro.eval import experiments as E


def test_fig10(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.fig10(trace_set, instr))
    report(result.render())

    mis = result.misprediction_rate
    rate = result.prediction_rate

    # Tags monotonically cut the misprediction rate.
    assert mis["4-bit tag"] <= mis["no tag"]
    assert mis["8-bit tag"] <= mis["4-bit tag"] + 0.002

    # CFI on top of tags cuts it further.
    assert mis["4-bit tag + path"] <= mis["4-bit tag"]
    assert mis["8-bit tag + path"] <= mis["8-bit tag"]

    # The cost in coverage is small: tags lose only a few points of
    # prediction rate (paper: ~2%).
    assert rate["no tag"] - rate["8-bit tag"] < 0.10

    # The tagged+path configuration is very accurate (paper: ~0.7%).
    assert mis["8-bit tag + path"] < 0.05
