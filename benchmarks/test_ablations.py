"""Ablations of the design choices DESIGN.md calls out (beyond the paper's
own figures): PF bits, correlation modes, decoupled PF table, selector
dynamics, and set-associative Link Tables."""

import pytest
from conftest import run_once

from repro.eval.metrics import PredictorMetrics
from repro.eval.runner import run_predictor
from repro.predictors import (
    CAPConfig,
    CAPPredictor,
    HybridConfig,
    HybridPredictor,
)
from repro.predictors.cap import (
    CORRELATION_BASE,
    CORRELATION_DELTA,
    CORRELATION_REAL,
)
from repro.predictors.link_table import LinkTableConfig
from repro.workloads import suites


def _sweep(trace_set, instr, variants):
    """Run each predictor factory over every trace; return merged metrics."""
    totals = {name: PredictorMetrics(name=name) for name in variants}
    for trace_name in trace_set:
        stream = suites.get_trace(trace_name, instr).predictor_stream()
        for name, factory in variants.items():
            totals[name].add(run_predictor(factory(), stream))
    return totals


def test_pf_bits_ablation(benchmark, trace_set, instr, report):
    """PF bits trade training speed for pollution control (Section 3.5)."""
    variants = {
        "pf on": lambda: CAPPredictor(CAPConfig()),
        "pf off": lambda: CAPPredictor(
            CAPConfig(lt=LinkTableConfig(pf_bits=0))
        ),
        "pf decoupled": lambda: CAPPredictor(
            CAPConfig(lt=LinkTableConfig(pf_decoupled=True))
        ),
    }
    totals = run_once(benchmark, lambda: _sweep(trace_set, instr, variants))
    lines = [
        f"PF ablation: {name}: rate={m.prediction_rate:.1%}"
        f" acc={m.accuracy:.2%}"
        for name, m in totals.items()
    ]
    report("\n".join(lines))
    # All variants stay accurate; the decoupled PF table must not be worse
    # than the in-LT PF bits (it has finer granularity).
    assert totals["pf decoupled"].prediction_rate >= (
        totals["pf on"].prediction_rate - 0.03
    )
    for metrics in totals.values():
        assert metrics.accuracy > 0.95


def test_correlation_mode_ablation(benchmark, trace_set, instr, report):
    """Base addresses vs real addresses vs deltas (Section 3.3)."""
    variants = {
        mode: (lambda mode=mode: CAPPredictor(CAPConfig(correlation=mode)))
        for mode in (CORRELATION_BASE, CORRELATION_REAL, CORRELATION_DELTA)
    }
    totals = run_once(benchmark, lambda: _sweep(trace_set, instr, variants))
    lines = [
        f"correlation {name}: rate={m.prediction_rate:.1%}"
        f" acc={m.accuracy:.2%} correct={m.correct_rate:.1%}"
        for name, m in totals.items()
    ]
    report("\n".join(lines))
    # Base addresses beat real addresses in aggregate (Figure 9's claim),
    # and the delta alternative suffers from false correlation (the paper
    # rejects it as "less attractive").
    assert totals["base"].correct_rate > totals["real"].correct_rate
    assert totals["base"].accuracy >= totals["delta"].accuracy - 0.01


def test_selector_ablation(benchmark, trace_set, instr, report):
    """Dynamic 2-bit selector vs static priorities (Section 3.7)."""
    variants = {
        "dynamic": lambda: HybridPredictor(),
        "static cap": lambda: HybridPredictor(
            HybridConfig(static_selector="cap")
        ),
        "static stride": lambda: HybridPredictor(
            HybridConfig(static_selector="stride")
        ),
    }
    totals = run_once(benchmark, lambda: _sweep(trace_set, instr, variants))
    lines = [
        f"selector {name}: rate={m.prediction_rate:.1%}"
        f" acc={m.accuracy:.2%} correct={m.correct_rate:.1%}"
        for name, m in totals.items()
    ]
    report("\n".join(lines))
    dynamic = totals["dynamic"]
    for name in ("static cap", "static stride"):
        assert dynamic.correct_rate >= totals[name].correct_rate - 0.01


def test_associative_lt_ablation(benchmark, trace_set, instr, report):
    """Set-associative LT (enabled by tags, Section 3.4) vs direct-mapped."""
    variants = {
        "LT 1-way": lambda: CAPPredictor(
            CAPConfig(lt=LinkTableConfig(entries=4096, ways=1))
        ),
        "LT 2-way": lambda: CAPPredictor(
            CAPConfig(lt=LinkTableConfig(entries=4096, ways=2))
        ),
    }
    totals = run_once(benchmark, lambda: _sweep(trace_set, instr, variants))
    lines = [
        f"{name}: rate={m.prediction_rate:.1%} acc={m.accuracy:.2%}"
        for name, m in totals.items()
    ]
    report("\n".join(lines))
    # The paper: LT associativity has low impact (history values spread
    # evenly).  Allow a modest band either way.
    delta = abs(
        totals["LT 2-way"].prediction_rate - totals["LT 1-way"].prediction_rate
    )
    assert delta < 0.08


def test_history_shift_ablation(benchmark, trace_set, instr, report):
    """Shift amount (via history length) controls context aging."""
    variants = {
        f"L={n}": (lambda n=n: CAPPredictor(CAPConfig(history_length=n)))
        for n in (1, 4, 12)
    }
    totals = run_once(benchmark, lambda: _sweep(trace_set, instr, variants))
    lines = [
        f"history {name}: correct={m.correct_rate:.1%}"
        for name, m in totals.items()
    ]
    report("\n".join(lines))
    # Degenerate lengths lose to the paper's default of 4.
    assert totals["L=4"].correct_rate >= totals["L=12"].correct_rate - 0.02
