"""Micro-benchmarks: raw throughput of the simulator and the predictors.

These are classic pytest-benchmark timings (many rounds) rather than
figure reproductions — useful for catching performance regressions in the
hot paths (CPU dispatch loop, predictor predict/update).
"""

import pytest

from repro.eval.runner import run_predictor
from repro.isa.cpu import CPU
from repro.predictors import (
    CAPPredictor,
    HybridPredictor,
    LastAddressPredictor,
    StridePredictor,
)
from repro.timing import simulate
from repro.workloads import LinkedListWorkload, trace_workload


@pytest.fixture(scope="module")
def small_trace():
    return trace_workload(LinkedListWorkload(seed=9), max_instructions=20_000)


@pytest.fixture(scope="module")
def small_stream(small_trace):
    return small_trace.predictor_stream()


def test_cpu_throughput(benchmark):
    built = LinkedListWorkload(seed=9).build()
    cpu = CPU(built.memory)

    def run():
        return cpu.run(built.program, max_instructions=20_000)

    result = benchmark(run)
    assert result.instructions == 20_000


@pytest.mark.parametrize("factory", [
    LastAddressPredictor, StridePredictor, CAPPredictor, HybridPredictor,
], ids=["last", "stride", "cap", "hybrid"])
def test_predictor_throughput(benchmark, small_stream, factory):
    metrics = benchmark(lambda: run_predictor(factory(), small_stream))
    assert metrics.loads > 0


def test_timing_model_throughput(benchmark, small_trace):
    result = benchmark(lambda: simulate(small_trace))
    assert result.cycles > 0


def test_trace_generation_throughput(benchmark):
    result = benchmark(
        lambda: trace_workload(
            LinkedListWorkload(seed=9), max_instructions=10_000
        )
    )
    assert len(result) == 10_000
