#!/usr/bin/env python
"""Record one fig5 full-grid wall-clock measurement into BENCH_fig5.json.

The trajectory file at the repo root is append-only perf history for the
figure-suite hot loop; ``python -m repro stats bench --gate PCT`` renders
it and regression-gates the newest entry.  Usage::

    python benchmarks/record_bench.py --label pr6-numpy --backend numpy
    python benchmarks/record_bench.py --check        # schema-check only

The measured command is the real user-facing entry point — a fresh
``python -m repro run fig5 --full`` subprocess pinned to one worker — so
the number tracks what a contributor actually waits for.  Trace caches
are warmed beforehand (untimed): the first-ever run generates 45 traces,
which is workload-generator cost, not predictor-evaluation cost.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.telemetry.stats import (  # noqa: E402
    BENCH_SCHEMA_ID,
    check_bench_file,
)

DEFAULT_FILE = REPO_ROOT / "BENCH_fig5.json"


def _warm_traces() -> None:
    from repro.workloads import suites

    for name in suites.trace_names():
        suites.get_trace(name)


def _observed_backend(requested: str) -> str:
    """The backend the measured run actually exercises.

    Requesting ``numpy`` does not guarantee kernel execution: a predictor
    without batch support, or overrides outside the kernels' modelled
    envelope, make every dispatch raise ``BatchFallback`` and the whole
    run silently executes the scalar loop.  The engine records the
    *observed* backend on each ``JobResult`` (``"python"`` when no kernel
    dispatch succeeded), so probe one small job per fig5 variant and
    record what the measurement will really be.
    """
    from repro.eval.engine import Job, execute_job
    from repro.eval.experiments import quick_trace_set
    from repro.telemetry.stats import DEFAULT_VARIANTS

    previous = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = requested
    try:
        trace = quick_trace_set()[0]
        for variant, (factory, overrides, gap) in DEFAULT_VARIANTS.items():
            result = execute_job(Job(
                trace=trace, factory=factory, overrides=dict(overrides),
                gap=gap, instructions=2000, variant=variant,
            ))
            if result.backend == "numpy":
                return "numpy"
        return "python"
    finally:
        if previous is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = previous


def _measure(backend: str, jobs: int) -> float:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_JOBS"] = str(jobs)
    env["REPRO_BACKEND"] = backend
    command = [sys.executable, "-m", "repro", "run", "fig5", "--full"]
    started = time.monotonic()
    subprocess.run(
        command,
        cwd=REPO_ROOT,
        env=env,
        check=True,
        stdout=subprocess.DEVNULL,
    )
    return time.monotonic() - started


def _append(path: Path, entry: dict) -> None:
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
    else:
        payload = {
            "schema": BENCH_SCHEMA_ID,
            "benchmark": "python -m repro run fig5 --full (45 traces)",
            "entries": [],
        }
    payload["entries"].append(entry)
    path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend", choices=("python", "numpy"), default="numpy",
        help="kernel backend to measure (default: numpy)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="engine worker count (default 1: serial is the comparable"
             " configuration across hosts)",
    )
    parser.add_argument("--label", required=False,
                        help="entry label (default: git short hash)")
    parser.add_argument("--note", default="", help="free-form context")
    parser.add_argument(
        "--file", type=Path, default=DEFAULT_FILE, metavar="PATH",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="only schema-check the trajectory file, do not measure",
    )
    args = parser.parse_args(argv)

    if args.check:
        problems = check_bench_file(args.file)
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{args.file}: {'FAIL' if problems else 'ok'}")
        return 1 if problems else 0

    label = args.label
    if label is None:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        label = completed.stdout.strip() or "worktree"

    print("warming trace caches ...", flush=True)
    _warm_traces()
    observed = _observed_backend(args.backend)
    if observed != args.backend:
        print(
            f"requested backend {args.backend!r}, but every kernel"
            f" dispatch fell back to the scalar loop — recording the"
            f" observed backend {observed!r}",
            file=sys.stderr,
        )
    print(f"timing fig5 --full (backend={observed},"
          f" jobs={args.jobs}) ...", flush=True)
    wall = _measure(args.backend, args.jobs)
    entry = {
        "label": label,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "wall_s": round(wall, 1),
        "backend": observed,
        "jobs": args.jobs,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "note": args.note,
    }
    _append(args.file, entry)
    print(f"{wall:.1f}s -> appended {entry['label']!r} to {args.file}")
    problems = check_bench_file(args.file)
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
