"""Figure 11 — influence of the prediction gap on the predictors.

Paper result: moving from immediate update to a pipelined model costs the
hybrid ~7 points of prediction rate (most of it from the CAP component)
and drops accuracy from 98.9% to 96.6% (gap 4) and 96.1% (gap 12); the
rate is almost flat in the gap while accuracy keeps eroding; the hybrid
stays well ahead of the enhanced stride predictor throughout.
"""

from conftest import run_once

from repro.eval import experiments as E

GAPS = [0, 4, 8, 12]


def test_fig11(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.fig11(trace_set, instr, gaps=GAPS))
    report(result.render())

    hybrid = result.series["hybrid"]
    stride = result.series["stride"]

    # Pipelining costs prediction rate and accuracy for the hybrid.
    assert hybrid[4][0] <= hybrid[0][0]
    assert hybrid[4][1] <= hybrid[0][1] + 0.001

    # ...but the degradation is graceful (the paper's headline).
    assert hybrid[12][0] > 0.5 * hybrid[0][0]

    # The prediction rate barely moves between gap 4 and gap 12.
    assert abs(hybrid[12][0] - hybrid[4][0]) < 0.08

    # The hybrid stays ahead of stride at every gap.
    for gap in GAPS:
        assert hybrid[gap][2] >= stride[gap][2] - 0.01  # correct rate
