"""Section 4.2 (text) — hybrid prediction rate vs Link Table size.

Paper result: the average hybrid prediction rate "steadily increases from
63% for a 1K-entry LT to about 68% for 8K", with the LT-sensitive suites
being CAD, INT, JAV and MM.
"""

from conftest import run_once

from repro.eval import experiments as E

SIZES = [1024, 2048, 4096, 8192]


def test_lt_size_sweep(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.lt_sweep(trace_set, instr, SIZES))
    report(result.render())

    rates = [result.average(f"LT {s // 1024}K").prediction_rate for s in SIZES]

    # Monotone non-decreasing trend (small jitter tolerated).
    for small, large in zip(rates, rates[1:]):
        assert large >= small - 0.01

    # The full sweep gains a few points, as in the paper (63% -> 68%).
    assert 0.0 < rates[-1] - rates[0] < 0.20
