"""Related work ([Baer91]/[Gonz97]) — address prediction vs prefetching.

The paper's prior-art section contrasts the two latency-hiding camps;
[Gonz97] shares one stride table between them.  This bench compares
no-help / prefetch-only / predict-only / both on the timing model.
Expected shape: on memory-bound stride code prefetching dominates (it
hides full miss latency, needs no recovery); on pointer chases address
prediction is the enabler (a stride prefetcher cannot follow the chain);
combining them never hurts much.
"""

from conftest import run_once

from repro.predictors import HybridPredictor
from repro.timing import StridePrefetcher, simulate
from repro.workloads import suites


def _sweep(trace_set, instr):
    rows = {}
    for name in trace_set:
        trace = suites.get_trace(name, instr)
        base = simulate(trace)
        rows[name] = {
            "prefetch": base.cycles / simulate(
                trace, prefetcher=StridePrefetcher()).cycles,
            "predict": base.cycles / simulate(
                trace, HybridPredictor()).cycles,
            "both": base.cycles / simulate(
                trace, HybridPredictor(), prefetcher=StridePrefetcher()
            ).cycles,
        }
    return rows


def test_prefetch_vs_prediction(benchmark, trace_set, instr, report):
    # Keep this affordable: 1 trace per suite.
    subset = trace_set[::2]
    rows = run_once(benchmark, lambda: _sweep(subset, instr))
    lines = [
        f"{name}: prefetch x{r['prefetch']:.3f}  predict x{r['predict']:.3f}"
        f"  both x{r['both']:.3f}"
        for name, r in rows.items()
    ]
    report("Prediction vs prefetching (speedup over no help)\n"
           + "\n".join(lines))

    geo = {
        key: sum(rows[name][key] for name in rows) / len(rows)
        for key in ("prefetch", "predict", "both")
    }

    # Both techniques help on average.
    assert geo["prefetch"] > 1.0
    assert geo["predict"] > 1.0

    # Combining them is at least as good as prefetching alone (the
    # [Gonz97] motivation for sharing the structures).
    assert geo["both"] >= geo["prefetch"] - 0.01

    # On the INT pointer-chasing trace prediction must beat prefetching.
    int_traces = [n for n in rows if n.startswith("INT_cmp")]
    for name in int_traces:
        assert rows[name]["predict"] > rows[name]["prefetch"]
