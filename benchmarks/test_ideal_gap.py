"""[Saze97] reference — how much of the ideal context predictability does
the finite CAP capture?

The paper cites Sazeides & Smith's *ideal* context-predictor study as the
motivation for a practical implementation.  This bench measures the gap:
an unbounded order-4 Markov model vs the 4K-LT CAP, plus the remaining
headroom the paper's Section 6 calls out ("there are still about one
third of all load addresses that we do not attempt to predict").
"""

from conftest import run_once

from repro.eval.metrics import PredictorMetrics
from repro.eval.runner import run_predictor
from repro.predictors import (
    CAPPredictor,
    HybridPredictor,
    IdealContextConfig,
    IdealContextPredictor,
)
from repro.workloads import suites


def _sweep(trace_set, instr):
    totals = {
        "cap 4K": PredictorMetrics(),
        "ideal o4": PredictorMetrics(),
        "hybrid": PredictorMetrics(),
    }
    for name in trace_set:
        stream = suites.get_trace(name, instr).predictor_stream()
        totals["cap 4K"].add(run_predictor(CAPPredictor(), stream))
        totals["ideal o4"].add(run_predictor(
            IdealContextPredictor(IdealContextConfig(order=4)), stream))
        totals["hybrid"].add(run_predictor(HybridPredictor(), stream))
    return totals


def test_ideal_gap(benchmark, trace_set, instr, report):
    totals = run_once(benchmark, lambda: _sweep(trace_set, instr))
    report("\n".join(
        f"ideal gap: {name}: correct={m.correct_rate:.1%}"
        f" (rate {m.prediction_rate:.1%})"
        for name, m in totals.items()
    ))
    cap = totals["cap 4K"]
    ideal = totals["ideal o4"]
    hybrid = totals["hybrid"]

    # The unbounded model bounds the finite one from above.
    assert ideal.correct_rate >= cap.correct_rate - 0.02

    # The finite CAP captures a substantial share of the ideal.
    if ideal.correct_rate > 0:
        assert cap.correct_rate / ideal.correct_rate > 0.5

    # And the paper's Section 6 honesty: even the hybrid leaves a
    # meaningful fraction of loads unpredicted (about one third for the
    # paper; we only require that headroom exists).
    assert hybrid.prediction_rate < 0.97
