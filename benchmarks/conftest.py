"""Benchmark-harness configuration.

Each benchmark regenerates one of the paper's figures/tables and prints the
same rows/series the paper reports (run pytest with ``-s`` to see them; the
tables are also appended to ``bench_results.txt`` in the working
directory).

Environment knobs:

``REPRO_BENCH_TRACES``
    ``quick`` (default) — first two traces of each suite (16 traces);
    ``full``  — the whole 45-trace roster (paper-equivalent, slower).
``REPRO_BENCH_INSTR``
    Per-trace dynamic instruction budget (default 200000; traces are
    generated once and cached under ``.trace_cache/``).
"""

import os
from pathlib import Path

import pytest

from repro.eval import experiments as E
from repro.workloads import suites

RESULTS_FILE = Path("bench_results.txt")


def _trace_names():
    mode = os.environ.get("REPRO_BENCH_TRACES", "quick")
    if mode == "full":
        return suites.trace_names()
    if mode == "quick":
        return E.quick_trace_set()
    raise ValueError(f"REPRO_BENCH_TRACES must be quick|full, got {mode!r}")


@pytest.fixture(scope="session")
def trace_set():
    """Trace names the benchmarks evaluate on."""
    return _trace_names()


@pytest.fixture(scope="session")
def instr():
    """Per-trace instruction budget."""
    return int(os.environ.get("REPRO_BENCH_INSTR", "200000"))


@pytest.fixture(scope="session", autouse=True)
def _warm_trace_cache(trace_set, instr):
    """Generate (or load) every trace once before timing anything."""
    for name in trace_set:
        suites.get_trace(name, instr)


@pytest.fixture()
def report():
    """Print a rendered result table and append it to the results file."""

    def _report(text: str) -> None:
        print()
        print(text)
        with RESULTS_FILE.open("a") as fh:
            fh.write(text + "\n\n")

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
