"""Section 6 future-work extensions, benchmarked against the baselines:
profile-guided routing and the variable-history CAP."""

from conftest import run_once

from repro.eval.metrics import PredictorMetrics
from repro.eval.runner import run_predictor
from repro.predictors import (
    CAPPredictor,
    HybridPredictor,
    ProfileGuidedPredictor,
    VariableHistoryCAP,
    build_profile,
)
from repro.workloads import suites


def _sweep(trace_set, instr, factories):
    totals = {name: PredictorMetrics(name=name) for name in factories}
    for trace_name in trace_set:
        trace = suites.get_trace(trace_name, instr)
        stream = trace.predictor_stream()
        for name, factory in factories.items():
            totals[name].add(run_predictor(factory(trace), stream))
    return totals


def test_profile_guided(benchmark, trace_set, instr, report):
    """Profile assist: comparable quality, no pollution, smaller tables."""

    factories = {
        "hybrid": lambda trace: HybridPredictor(),
        "profile-guided": lambda trace: ProfileGuidedPredictor(
            build_profile(trace)
        ),
    }
    totals = run_once(benchmark, lambda: _sweep(trace_set, instr, factories))
    report("\n".join(
        f"profile assist: {name}: rate={m.prediction_rate:.1%}"
        f" acc={m.accuracy:.2%} correct={m.correct_rate:.1%}"
        for name, m in totals.items()
    ))
    guided = totals["profile-guided"]
    hybrid = totals["hybrid"]
    # Within a modest band of the full hybrid, at far lower hardware cost
    # (the profile here is same-trace, i.e. a perfect-training PGO bound).
    assert guided.correct_rate > hybrid.correct_rate - 0.10
    assert guided.accuracy > 0.97


def test_variable_history(benchmark, trace_set, instr, report):
    """Variable history length vs the fixed-length CAP (same storage)."""

    factories = {
        "cap L=4": lambda trace: CAPPredictor(),
        "vh-cap 2/6": lambda trace: VariableHistoryCAP(),
    }
    totals = run_once(benchmark, lambda: _sweep(trace_set, instr, factories))
    report("\n".join(
        f"history: {name}: rate={m.prediction_rate:.1%}"
        f" acc={m.accuracy:.2%} correct={m.correct_rate:.1%}"
        for name, m in totals.items()
    ))
    vh = totals["vh-cap 2/6"]
    fixed = totals["cap L=4"]
    # The tournament must stay competitive despite halved per-component LTs.
    assert vh.correct_rate > fixed.correct_rate - 0.08
    assert vh.accuracy > 0.97
