"""Section 3.6 — control-based address predictors.

Paper result: a g-share-style address predictor "gives poor results mainly
because the loads are not well correlated to all the individual
conditional branches"; indexing by a path history over recent call sites
"gives better results" but still not enough to substitute for CAP.
"""

from conftest import run_once

from repro.eval import experiments as E


def test_control_based(benchmark, trace_set, instr, report):
    result = run_once(benchmark, lambda: E.control_based(trace_set, instr))
    report(result.render())

    gshare = result.average("gshare")
    path = result.average("call-path")
    cap = result.average("cap")

    # CAP clearly dominates both control-based schemes.
    assert cap.correct_rate > gshare.correct_rate
    assert cap.correct_rate > path.correct_rate

    # The gap is large — control-based schemes are not viable substitutes.
    assert cap.correct_rate - max(gshare.correct_rate, path.correct_rate) > 0.05
