#!/usr/bin/env python
"""Load generator and SLO reporter for ``python -m repro serve``.

Drives the prediction server with deterministic fuzz-profile workloads
(:func:`repro.verify.fuzz.generate_events` — the same generator the
differential harness replays, so served content is reproducible from the
seed alone), sweeps a concurrency ramp, and writes a schema-validated
JSON **SLO report**: per-step saturation curve (throughput, latency
p50/p99) plus run totals including the server's own dropped-session
counters.  Usage::

    python benchmarks/loadgen.py --spawn --output slo_report.json
    python benchmarks/loadgen.py --port 8377 --ramp 1,2,4,8 --mode open
    python benchmarks/loadgen.py --spawn --shards 2 --require-zero-drops

``--spawn`` starts a private server subprocess on an ephemeral port and
drains it with SIGTERM afterwards — the CI smoke job's one-liner.  The
report validates against ``repro.telemetry/slo_report.schema.json``
before it is written; ``python -m repro stats slo report.json`` renders
and re-validates it later.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.serve import protocol  # noqa: E402
from repro.telemetry.manifest import perf_clock  # noqa: E402
from repro.telemetry.schema import load_schema, validate  # noqa: E402
from repro.verify.fuzz import generate_events  # noqa: E402

SLO_SCHEMA_PATH = SRC / "repro" / "telemetry" / "slo_report.schema.json"
READY_PREFIX = "repro-serve listening on "
ADMIN_READY_PREFIX = "repro-serve admin on "

#: Per-process memo of replayed trace streams (one .npz read per run).
_TRACE_EVENTS: Dict[str, List[tuple]] = {}


def trace_events(name: str, count: int) -> List[tuple]:
    """Predictor-visible events of a suite/registry trace, cycled to count.

    Replaying an ingested trace through the server uses the exact stream
    the offline evaluators consume (``suites.get_predictor_stream``), so
    served metrics are comparable with engine runs on the same trace.
    """
    base = _TRACE_EVENTS.get(name)
    if base is None:
        from repro.workloads import suites

        base = suites.get_predictor_stream(name).tuples()
        _TRACE_EVENTS[name] = base
    if not base:
        raise SystemExit(f"trace {name!r} has no predictor-visible events")
    events: List[tuple] = []
    while len(events) < count:
        events.extend(base[: count - len(events)])
    return events


def percentile(sorted_values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile over an ascending list (None when empty)."""
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[int(index)]


def latency_summary(latencies_ms: List[float]) -> Dict[str, Optional[float]]:
    ordered = sorted(latencies_ms)
    return {
        "p50": percentile(ordered, 0.50),
        "p90": percentile(ordered, 0.90),
        "p99": percentile(ordered, 0.99),
        "mean": (sum(ordered) / len(ordered)) if ordered else None,
        "max": ordered[-1] if ordered else None,
    }


@dataclass
class SessionOutcome:
    """One client session's measurements."""

    latencies_ms: List[float] = field(default_factory=list)
    feeds: int = 0
    loads: int = 0
    errors: int = 0
    backend: str = ""
    finished: bool = False


class Client:
    """One connection = one session, strict request/response framing."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.frames = protocol.FrameReader()

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def rpc(self, frame: bytes) -> Dict[str, Any]:
        assert self.reader is not None and self.writer is not None
        self.writer.write(frame)
        await self.writer.drain()
        while True:
            data = await self.reader.read(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            for _kind, payload in self.frames.push(data):
                return protocol.decode_json(payload)

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def run_session(
    args: argparse.Namespace,
    port: int,
    session_index: int,
    rate_per_session: Optional[float],
) -> SessionOutcome:
    """Open → feed xN → finish, measuring per-feed round-trip latency.

    Closed loop awaits each response before the next feed; open loop
    sends on a fixed schedule, so queueing delay shows up as latency.
    """
    outcome = SessionOutcome()
    total_events = args.events_per_feed * args.feeds_per_session
    if args.trace:
        events = trace_events(args.trace, total_events)
    else:
        events = generate_events(
            args.profile, args.seed + session_index, total_events,
        )
    chunks = [
        events[i : i + args.events_per_feed]
        for i in range(0, len(events), args.events_per_feed)
    ]
    client = Client(args.host, port)
    try:
        await client.connect()
        opened = await client.rpc(protocol.encode_json({
            "type": "open",
            "factory": args.factory,
            "variant": f"loadgen-{session_index}",
            "trace": f"lg{args.seed}-{session_index}",
        }))
        if opened.get("type") != "opened":
            outcome.errors += 1
            return outcome
        started = perf_clock()
        for feed_index, chunk in enumerate(chunks):
            if rate_per_session:
                due = started + feed_index / rate_per_session
                delay = due - perf_clock()
                if delay > 0:
                    await asyncio.sleep(delay)
            sent = perf_clock()
            response = await client.rpc(protocol.encode_events(chunk))
            elapsed_ms = (perf_clock() - sent) * 1000.0
            if response.get("type") != "predictions":
                outcome.errors += 1
                continue
            outcome.latencies_ms.append(elapsed_ms)
            outcome.feeds += 1
            outcome.loads += int(response.get("count") or 0)
        finish = await client.rpc(protocol.encode_json({"type": "finish"}))
        if finish.get("type") == "metrics":
            outcome.finished = True
            outcome.backend = str(finish.get("backend") or "")
        else:
            outcome.errors += 1
    except (ConnectionError, OSError, protocol.ProtocolError):
        outcome.errors += 1
    finally:
        await client.close()
    return outcome


async def run_step(
    args: argparse.Namespace, port: int, concurrency: int
) -> Dict[str, Any]:
    """One ramp step: ``concurrency`` sessions in flight at once."""
    rate_per_session = (
        args.rate / concurrency if args.mode == "open" and args.rate else None
    )
    started = perf_clock()
    outcomes = await asyncio.gather(*(
        run_session(args, port, concurrency * 1000 + i, rate_per_session)
        for i in range(concurrency)
    ))
    duration_s = perf_clock() - started
    latencies = [ms for o in outcomes for ms in o.latencies_ms]
    loads = sum(o.loads for o in outcomes)
    feeds = sum(o.feeds for o in outcomes)
    return {
        "concurrency": concurrency,
        "sessions": sum(1 for o in outcomes if o.finished),
        "feeds": feeds,
        "loads": loads,
        "errors": sum(o.errors for o in outcomes),
        "duration_s": duration_s,
        "throughput_lps": loads / duration_s if duration_s > 0 else None,
        "throughput_feeds_per_s": (
            feeds / duration_s if duration_s > 0 else None
        ),
        "latency_ms": latency_summary(latencies),
        "_backends": [o.backend for o in outcomes if o.backend],
        "_latencies": latencies,
    }


async def fetch_server_stats(
    host: str, port: int
) -> Optional[Dict[str, Any]]:
    client = Client(host, port)
    try:
        await client.connect()
        stats = await client.rpc(protocol.encode_json({"type": "stats"}))
        return stats if stats.get("type") == "stats" else None
    except (ConnectionError, OSError):
        return None
    finally:
        await client.close()


async def run_ramp(args: argparse.Namespace, port: int) -> Dict[str, Any]:
    steps: List[Dict[str, Any]] = []
    for concurrency in args.ramp_steps:
        step = await run_step(args, port, concurrency)
        print(
            f"  step c={concurrency}: {step['loads']} loads in"
            f" {step['duration_s']:.2f}s"
            f" p50={_fmt_ms(step['latency_ms']['p50'])}"
            f" p99={_fmt_ms(step['latency_ms']['p99'])}"
            f" errors={step['errors']}",
            flush=True,
        )
        steps.append(step)
    server_stats = await fetch_server_stats(args.host, port)

    all_latencies = sorted(
        ms for step in steps for ms in step.pop("_latencies")
    )
    backends: Dict[str, int] = {}
    for step in steps:
        for backend in step.pop("_backends"):
            backends[backend] = backends.get(backend, 0) + 1
    total_loads = sum(step["loads"] for step in steps)
    total_duration = sum(step["duration_s"] for step in steps)
    report = {
        "schema": "repro.slo_report/v1",
        "server": {
            "host": args.host,
            "port": port,
            "spawned": bool(args.spawn),
            "shards": args.shards if args.spawn else None,
            "backend": args.backend,
        },
        "workload": {
            "profile": args.profile,
            "trace": args.trace,
            "seed": args.seed,
            "mode": args.mode,
            "events_per_feed": args.events_per_feed,
            "feeds_per_session": args.feeds_per_session,
            "rate_per_s": args.rate if args.mode == "open" else None,
            "factory": args.factory,
        },
        "steps": steps,
        "totals": {
            "sessions": sum(step["sessions"] for step in steps),
            "feeds": sum(step["feeds"] for step in steps),
            "loads": total_loads,
            "errors": sum(step["errors"] for step in steps),
            "dropped_sessions": (
                server_stats.get("sessions_dropped")
                if server_stats else None
            ),
            "rejected_feeds": (
                server_stats.get("rejected_feeds") if server_stats else None
            ),
            "timeouts": (
                server_stats.get("timeouts") if server_stats else None
            ),
            "kernel_feeds": (
                server_stats.get("kernel_feeds") if server_stats else None
            ),
            "backends": backends,
        },
        "slo": {
            "p50_ms": percentile(all_latencies, 0.50),
            "p99_ms": percentile(all_latencies, 0.99),
            "throughput_lps": (
                total_loads / total_duration if total_duration > 0 else None
            ),
        },
    }
    return report


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:.1f}ms" if value is not None else "n/a"


def spawn_server(
    args: argparse.Namespace,
) -> Tuple[subprocess.Popen, int, Optional[int]]:
    """Start a private server subprocess.

    Returns (process, data port, admin port) — the admin port is None
    unless ``--admin`` asked for the observability endpoint.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro", "serve",
        "--host", args.host, "--port", "0",
        "--shards", str(args.shards),
        "--queue-depth", str(args.queue_depth),
    ]
    if args.admin:
        command += ["--admin-port", "0"]
    if args.backend:
        command += ["--backend", args.backend]
    if args.telemetry_dir:
        command += ["--telemetry", "--telemetry-dir", args.telemetry_dir]
    if args.flight_dir:
        command += ["--flight-dir", args.flight_dir]
    process = subprocess.Popen(
        command, cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, text=True,
    )
    assert process.stdout is not None
    line = process.stdout.readline()
    if not line.startswith(READY_PREFIX):
        process.kill()
        raise RuntimeError(f"server did not come up (got {line!r})")
    port = int(line.rsplit(":", 1)[1])
    admin_port: Optional[int] = None
    if args.admin:
        line = process.stdout.readline()
        if not line.startswith(ADMIN_READY_PREFIX):
            process.kill()
            raise RuntimeError(f"no admin ready line (got {line!r})")
        admin_port = int(line.rsplit(":", 1)[1])
    return process, port, admin_port


def collect_server_obs(
    args: argparse.Namespace, admin_port: int
) -> Optional[Dict[str, Any]]:
    """Scrape the admin endpoint into the report's ``server_obs`` section.

    Joins the client-side percentiles with the server's own queue-wait
    histogram (how long feeds sat in the batching queue before running),
    and optionally exports the span buffer as a Chrome trace-event file
    whose ``trace`` args carry the loadgen-minted ``lg<seed>-<n>`` IDs.
    """
    from repro.obs.admin import fetch_admin
    from repro.obs.metrics import histogram_percentile
    from repro.obs.tracing import validate_trace_export

    try:
        answer = fetch_admin(args.host, admin_port, "metrics")
    except (ConnectionError, OSError, protocol.ProtocolError) as exc:
        print(f"admin scrape failed: {exc}", file=sys.stderr)
        return None
    snapshot = answer.get("metrics") or {}
    histograms = snapshot.get("histograms") or {}
    counters = snapshot.get("counters") or {}

    wait = histograms.get("serve.queue.wait_s")
    queue_wait_ms: Dict[str, Any] = {
        "count": 0, "mean": None, "p50": None, "p95": None, "p99": None,
    }
    if wait and wait.get("count"):
        count = int(wait["count"])
        queue_wait_ms = {
            "count": count,
            "mean": float(wait["sum"]) / count * 1000.0,
        }
        for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            edge = histogram_percentile(wait, q)
            queue_wait_ms[name] = None if edge is None else edge * 1000.0

    occupancy = histograms.get("serve.batch.occupancy")
    occupancy_mean = None
    if occupancy and occupancy.get("count"):
        occupancy_mean = (
            float(occupancy["sum"]) / int(occupancy["count"])
        )

    errors = {
        name[len("serve.errors."):]: int(value)
        for name, value in counters.items()
        if name.startswith("serve.errors.")
    }

    spans_exported: Optional[int] = None
    if args.trace_export:
        try:
            spans = fetch_admin(args.host, admin_port, "spans")
        except (ConnectionError, OSError, protocol.ProtocolError) as exc:
            print(f"span export failed: {exc}", file=sys.stderr)
        else:
            document = {
                "displayTimeUnit": spans.get("displayTimeUnit") or "ms",
                "traceEvents": spans.get("traceEvents") or [],
            }
            problems = validate_trace_export(document)
            if problems:
                for problem in problems:
                    print(f"trace schema: {problem}", file=sys.stderr)
            else:
                Path(args.trace_export).write_text(
                    json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                spans_exported = len(document["traceEvents"])
                print(f"wrote {args.trace_export}"
                      f" ({spans_exported} spans)")

    return {
        "admin_port": admin_port,
        "queue_wait_ms": queue_wait_ms,
        "batch_occupancy_mean": occupancy_mean,
        "sessions_dropped": int(
            counters.get("serve.sessions.dropped") or 0
        ),
        "errors": errors,
        "spans_exported": spans_exported,
    }


def drain_server(process: subprocess.Popen) -> str:
    """SIGTERM the spawned server and return its drain line."""
    process.send_signal(signal.SIGTERM)
    try:
        stdout, _ = process.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        stdout, _ = process.communicate()
    return (stdout or "").strip()


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    target = parser.add_argument_group("target")
    target.add_argument("--host", default="127.0.0.1")
    target.add_argument("--port", type=int, default=8377,
                        help="server port (ignored with --spawn)")
    target.add_argument("--spawn", action="store_true",
                        help="start a private server subprocess on an"
                             " ephemeral port and drain it afterwards")
    target.add_argument("--shards", type=int, default=0,
                        help="shards for the spawned server")
    target.add_argument("--queue-depth", type=int, default=64,
                        help="queue depth for the spawned server")
    target.add_argument("--backend", choices=("python", "numpy"),
                        default=None,
                        help="backend for the spawned server")
    target.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="enable serve manifests in the spawned server")
    target.add_argument("--admin", action="store_true",
                        help="give the spawned server an admin endpoint"
                             " and scrape it into the report")
    target.add_argument("--admin-port", type=int, default=None,
                        metavar="PORT",
                        help="admin endpoint of an already-running server"
                             " (implied by --spawn --admin)")
    target.add_argument("--flight-dir", default=None, metavar="DIR",
                        help="flight-recorder postmortem directory for the"
                             " spawned server")

    workload = parser.add_argument_group("workload")
    workload.add_argument("--profile", default="mixed",
                          help="fuzz workload profile (see repro.verify"
                               ".fuzz)")
    workload.add_argument("--trace", default=None, metavar="NAME",
                          help="replay a suite/registry trace's predictor"
                               " stream instead of fuzz-profile events")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--factory", default="hybrid",
                          help="predictor factory served sessions use")
    workload.add_argument("--events-per-feed", type=int, default=500)
    workload.add_argument("--feeds-per-session", type=int, default=4)
    workload.add_argument("--mode", choices=("closed", "open"),
                          default="closed")
    workload.add_argument("--rate", type=float, default=50.0,
                          help="open-loop total feed rate per second")
    workload.add_argument("--ramp", default="1,2,4",
                          help="comma-separated concurrency steps")

    out = parser.add_argument_group("report")
    out.add_argument("--output", metavar="FILE", default=None,
                     help="write the SLO report JSON here")
    out.add_argument("--require-zero-drops", action="store_true",
                     help="exit 1 unless the server reports zero dropped"
                          " sessions and the run saw zero errors")
    out.add_argument("--trace-export", metavar="FILE", default=None,
                     help="write the server's span buffer here as Chrome"
                          " trace-event JSON (needs the admin endpoint)")
    out.add_argument("--require-server-obs", action="store_true",
                     help="exit 1 unless the admin scrape succeeded and"
                          " the server observed queue waits")
    args = parser.parse_args(argv)
    args.ramp_steps = [
        int(part) for part in str(args.ramp).split(",") if part.strip()
    ]
    if not args.ramp_steps or any(c < 1 for c in args.ramp_steps):
        parser.error(f"bad --ramp {args.ramp!r}")
    return args


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    process: Optional[subprocess.Popen] = None
    port = args.port
    admin_port = args.admin_port
    if args.spawn:
        process, port, spawned_admin = spawn_server(args)
        if spawned_admin is not None:
            admin_port = spawned_admin
        print(f"spawned server pid={process.pid} port={port}"
              + (f" admin={admin_port}" if admin_port else ""),
              flush=True)
    try:
        report = asyncio.run(run_ramp(args, port))
        report["server_obs"] = (
            collect_server_obs(args, admin_port)
            if admin_port is not None else None
        )
    finally:
        if process is not None:
            drain_line = drain_server(process)
            if drain_line:
                print(drain_line.splitlines()[-1], flush=True)

    problems = validate(report, load_schema(SLO_SCHEMA_PATH))
    if problems:
        for problem in problems:
            print(f"schema: {problem}", file=sys.stderr)
        return 2

    slo = report["slo"]
    totals = report["totals"]
    print(
        f"SLO: p50={_fmt_ms(slo['p50_ms'])} p99={_fmt_ms(slo['p99_ms'])}"
        f" throughput={slo['throughput_lps'] and round(slo['throughput_lps'])}"
        f" loads/s | sessions={totals['sessions']}"
        f" errors={totals['errors']}"
        f" dropped={totals['dropped_sessions']}"
    )
    server_obs = report.get("server_obs")
    if server_obs:
        wait = server_obs["queue_wait_ms"]
        print(
            f"server: queue-wait p50={_fmt_ms(wait['p50'])}"
            f" p95={_fmt_ms(wait['p95'])} p99={_fmt_ms(wait['p99'])}"
            f" (n={wait['count']})"
            f" dropped={server_obs['sessions_dropped']}"
        )
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.output}")
    if args.require_zero_drops:
        dropped = totals["dropped_sessions"]
        if dropped is None:
            print("server stats unavailable: cannot assert zero drops",
                  file=sys.stderr)
            return 1
        if dropped or totals["errors"]:
            print(
                f"SLO gate failed: dropped={dropped}"
                f" errors={totals['errors']}",
                file=sys.stderr,
            )
            return 1
    if args.require_server_obs:
        if not server_obs or not server_obs["queue_wait_ms"]["count"]:
            print("server obs gate failed: no admin scrape or empty"
                  " queue-wait histogram", file=sys.stderr)
            return 1
        if args.trace_export and not server_obs["spans_exported"]:
            print("server obs gate failed: empty or invalid trace export",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
